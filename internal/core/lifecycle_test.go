package core

import (
	"context"
	"sync/atomic"
	"testing"

	"xcluster/internal/query"
)

// TestInvalidateCachesDropsBoth proves one InvalidateCaches call empties
// the result cache and the plan cache together — the core guarantee a
// synopsis hot swap relies on.
func TestInvalidateCachesDropsBoth(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(ref)
	q := query.MustParse("//paper[year>2000]/title")
	want := est.Selectivity(q)
	if st := est.CacheStats(); st.Len != 1 {
		t.Fatalf("result cache not populated: %+v", st)
	}
	if st := est.PlanCacheStats(); st.Len != 1 {
		t.Fatalf("plan cache not populated: %+v", st)
	}

	est.InvalidateCaches()
	if st := est.CacheStats(); st.Len != 0 {
		t.Fatalf("result cache survived invalidation: %+v", st)
	}
	if st := est.PlanCacheStats(); st.Len != 0 {
		t.Fatalf("plan cache survived invalidation: %+v", st)
	}
	// The next call misses both caches, recompiles, and reproduces the
	// estimate bit-for-bit.
	if got := est.Selectivity(q); got != want {
		t.Fatalf("estimate changed across invalidation: %g != %g", got, want)
	}
	if st := est.PlanCacheStats(); st.Misses != 2 {
		t.Fatalf("expected a fresh compile after invalidation: %+v", st)
	}
}

// TestEpochStalePutNeverHits closes the swap race: a writer that
// computed a value against the old generation and inserts it after the
// epoch bump must not produce a hit — the entry carries the old stamp.
func TestEpochStalePutNeverHits(t *testing.T) {
	var epoch atomic.Uint64
	c := newLRUCache[float64](8, &epoch)
	stale := epoch.Load() // writer snapshots the epoch implicitly via put

	c.put("q", 1.5)
	if _, ok := c.get("q"); !ok {
		t.Fatal("same-epoch entry should hit")
	}

	// Swap: bump the epoch without (or before) the eager purge.
	epoch.Add(1)
	if v, ok := c.get("q"); ok {
		t.Fatalf("stale entry (epoch %d) served after bump: %g", stale, v)
	}
	// A post-bump insert is stamped fresh and hits again.
	c.put("q", 2.5)
	if v, ok := c.get("q"); !ok || v != 2.5 {
		t.Fatalf("fresh entry after bump: %g, %v", v, ok)
	}
}

// TestTraceCarriesGeneration checks that traced estimates are stamped
// with the synopsis generation and the executed plan's generation, on
// both the compile path and the cache-hit paths.
func TestTraceCarriesGeneration(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp := ref.Fingerprint()
	fp.Generation = 42
	ref.SetFingerprint(fp)
	est := NewEstimator(ref)
	q := query.MustParse("//paper/title")

	for i, wantPlanHit := range []bool{false, false} {
		if i == 1 {
			est.InvalidateCaches() // force recompute, same generation
		}
		_, trc, err := est.SelectivityTraced(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if trc.Generation != 42 || trc.PlanGeneration != 42 {
			t.Fatalf("call %d: generations %d/%d, want 42/42", i, trc.Generation, trc.PlanGeneration)
		}
		if trc.PlanCacheHit != wantPlanHit {
			t.Fatalf("call %d: plan hit %v", i, trc.PlanCacheHit)
		}
	}
	// Result-cache hit: no plan consulted, stamp still consistent.
	_, trc, err := est.SelectivityTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !trc.ResultCacheHit {
		t.Fatal("expected a result-cache hit")
	}
	if trc.Generation != 42 || trc.PlanGeneration != 42 {
		t.Fatalf("cache hit: generations %d/%d, want 42/42", trc.Generation, trc.PlanGeneration)
	}
}
