package core

import (
	"fmt"

	"xcluster/internal/xmltree"
)

// Provenance records how a BudgetPlan was chosen.
type Provenance string

const (
	// ProvenanceStatic marks a plan synthesized from explicitly
	// configured budgets (the classic Bstr/Bval pair).
	ProvenanceStatic Provenance = "static"
	// ProvenanceAuto marks a plan chosen by the sample-workload search
	// of AutoAllocate (the paper's Section 4.3 sketch).
	ProvenanceAuto Provenance = "auto"
	// ProvenanceWorkload marks a plan derived from a live
	// WorkloadProfile by the internal/budget planner.
	ProvenanceWorkload Provenance = "workload"
)

// BudgetPlan is a first-class byte-budget decision: how one total
// budget splits across the synopsis's storage components, where the
// split came from (Provenance), and — for workload-derived plans — the
// fingerprint of the WorkloadProfile that justified it.
//
// The builder enforces the paper's two-budget contract: StructBytes
// bounds nodes+edges (the merge phase) and ValueBytes bounds value
// summaries (the compression phase). The finer split refines that
// contract where the builder can act on it: the three value components
// (histogram/PST/term-histogram), when non-zero, direct the value
// phase to compress each summary kind toward its own sub-budget before
// the global pass enforces the ValueBytes total. The node/edge split
// is advisory — merging shrinks nodes and edges together, so the
// builder cannot trade one against the other — and is recorded so
// operators can compare planned against actual.
//
// A plan with all component fields zero is exactly equivalent to the
// legacy two-int configuration: the builder takes the same code path
// and produces bit-identical output (enforced by differential test).
type BudgetPlan struct {
	// TotalBytes is the unified budget the plan splits
	// (StructBytes + ValueBytes).
	TotalBytes int `json:"total_bytes"`
	// StructBytes is Bstr: the byte budget for nodes, edges and edge
	// counts.
	StructBytes int `json:"struct_bytes"`
	// ValueBytes is Bval: the byte budget for value summaries.
	ValueBytes int `json:"value_bytes"`

	// The component split. Node+Edge refine StructBytes;
	// Histogram+PST+TermHist refine ValueBytes. All zero means
	// "unsplit" — the legacy two-budget behavior.
	NodeBytes      int `json:"node_bytes,omitempty"`
	EdgeBytes      int `json:"edge_bytes,omitempty"`
	HistogramBytes int `json:"histogram_bytes,omitempty"`
	PSTBytes       int `json:"pst_bytes,omitempty"`
	TermHistBytes  int `json:"termhist_bytes,omitempty"`

	// Provenance tells where the split came from: static, auto, or
	// workload.
	Provenance Provenance `json:"provenance,omitempty"`
	// WorkloadFingerprint is the fingerprint of the WorkloadProfile a
	// workload-derived plan was computed from (empty otherwise).
	WorkloadFingerprint string `json:"workload_fingerprint,omitempty"`
}

// PlanFromBudgets synthesizes a static plan from the legacy Bstr/Bval
// pair. The component split stays zero ("unsplit"), so a build under
// this plan is bit-identical to one under the raw ints.
func PlanFromBudgets(structBudget, valueBudget int) BudgetPlan {
	return BudgetPlan{
		TotalBytes:  structBudget + valueBudget,
		StructBytes: structBudget,
		ValueBytes:  valueBudget,
		Provenance:  ProvenanceStatic,
	}
}

// IsZero reports whether the plan carries no decision at all.
func (p BudgetPlan) IsZero() bool { return p == BudgetPlan{} }

// StructBudget is the Bstr the plan assigns (nodes + edges).
func (p BudgetPlan) StructBudget() int { return p.StructBytes }

// ValueBudget is the Bval the plan assigns (all value summaries).
func (p BudgetPlan) ValueBudget() int { return p.ValueBytes }

// HasValueSplit reports whether the plan splits the value budget
// across summary kinds (directing the per-kind value phase) rather
// than leaving Bval as one pool.
func (p BudgetPlan) HasValueSplit() bool {
	return p.HistogramBytes > 0 || p.PSTBytes > 0 || p.TermHistBytes > 0
}

// valueKindBudget is the plan's sub-budget for one summary kind.
func (p BudgetPlan) valueKindBudget(vt xmltree.ValueType) int {
	switch vt {
	case xmltree.TypeNumeric:
		return p.HistogramBytes
	case xmltree.TypeString:
		return p.PSTBytes
	case xmltree.TypeText:
		return p.TermHistBytes
	}
	return 0
}

// Normalize fills derivable fields and validates consistency: group
// sums are reconciled with the component split, the total with the
// group sums. It returns the completed plan or an error naming the
// inconsistency.
func (p BudgetPlan) Normalize() (BudgetPlan, error) {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"total_bytes", p.TotalBytes}, {"struct_bytes", p.StructBytes}, {"value_bytes", p.ValueBytes},
		{"node_bytes", p.NodeBytes}, {"edge_bytes", p.EdgeBytes},
		{"histogram_bytes", p.HistogramBytes}, {"pst_bytes", p.PSTBytes}, {"termhist_bytes", p.TermHistBytes},
	} {
		if f.v < 0 {
			return p, fmt.Errorf("core: budget plan: negative %s %d", f.name, f.v)
		}
	}
	if s := p.NodeBytes + p.EdgeBytes; s > 0 {
		if p.StructBytes == 0 {
			p.StructBytes = s
		} else if p.StructBytes != s {
			return p, fmt.Errorf("core: budget plan: struct_bytes %d != node_bytes+edge_bytes %d", p.StructBytes, s)
		}
	}
	if s := p.HistogramBytes + p.PSTBytes + p.TermHistBytes; s > 0 {
		if p.ValueBytes == 0 {
			p.ValueBytes = s
		} else if p.ValueBytes != s {
			return p, fmt.Errorf("core: budget plan: value_bytes %d != histogram+pst+termhist bytes %d", p.ValueBytes, s)
		}
	}
	if s := p.StructBytes + p.ValueBytes; p.TotalBytes == 0 {
		p.TotalBytes = s
	} else if p.TotalBytes != s {
		return p, fmt.Errorf("core: budget plan: total_bytes %d != struct_bytes+value_bytes %d", p.TotalBytes, s)
	}
	if p.Provenance == "" {
		p.Provenance = ProvenanceStatic
	}
	return p, nil
}

// String renders the plan on one line for logs and debug endpoints.
func (p BudgetPlan) String() string {
	if p.IsZero() {
		return "no plan"
	}
	s := fmt.Sprintf("%s total=%d bstr=%d bval=%d", p.Provenance, p.TotalBytes, p.StructBytes, p.ValueBytes)
	if p.NodeBytes+p.EdgeBytes > 0 {
		s += fmt.Sprintf(" node=%d edge=%d", p.NodeBytes, p.EdgeBytes)
	}
	if p.HasValueSplit() {
		s += fmt.Sprintf(" hist=%d pst=%d termhist=%d", p.HistogramBytes, p.PSTBytes, p.TermHistBytes)
	}
	if p.WorkloadFingerprint != "" {
		s += " workload=" + p.WorkloadFingerprint
	}
	return s
}
