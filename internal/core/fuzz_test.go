package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeSynopsis feeds arbitrary bytes to the synopsis decoder: it
// must either return a valid synopsis or an error — never panic, hang,
// over-allocate on a lying length prefix, or return a synopsis that
// fails validation. Seeds cover both codec versions, truncations, and
// bit flips; checked-in inputs live in testdata/fuzz/FuzzDecodeSynopsis.
func FuzzDecodeSynopsis(f *testing.F) {
	tr := figure1(f)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		f.Fatal(err)
	}

	// Current (v2) encoding plus mutations.
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("XCLUSTER1\n"))
	f.Add([]byte("XCLUSTER2\n"))
	f.Add([]byte("XCLUSTER9\n"))
	f.Add([]byte{})
	mutated := append([]byte(nil), good...)
	for i := 20; i < len(mutated); i += 37 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	// Legacy (v1) encoding plus a truncation.
	var v1 bytes.Buffer
	if err := writeV1(&v1, ref); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v1.Bytes()[:len(v1.Bytes())*2/3])

	// Huge varint length prefix right after the magic.
	f.Add(append([]byte("XCLUSTER2\n"), 0xfe, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSynopsis(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if err := s.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid synopsis: %v", err)
		}
	})
}
