package core

import (
	"bytes"
	"testing"
)

// FuzzReadSynopsis feeds arbitrary bytes to the synopsis decoder: it must
// either return a valid synopsis or an error — never panic, hang, or
// return a synopsis that fails validation.
func FuzzReadSynopsis(f *testing.F) {
	// Seed with a genuine serialized synopsis plus mutations.
	tr := figure1(f)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("XCLUSTER1\n"))
	f.Add([]byte{})
	mutated := append([]byte(nil), good...)
	for i := 20; i < len(mutated); i += 37 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSynopsis(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if err := s.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid synopsis: %v", err)
		}
	})
}
