// Package core implements the paper's primary contribution: XCLUSTER
// synopses. An XCluster synopsis is a type-respecting node-partitioning
// graph summary of an XML document in which every node represents a
// structure-value cluster of elements: it stores the cluster cardinality,
// per-edge average child counts (the structural centroid), and a value
// summary approximating the distribution of element values in the cluster
// (the value centroid).
//
// The package provides the reference-synopsis construction (a refinement
// of the lossless count-stable summary), the node-merge and
// value-compression operations with the localized Δ clustering-error
// metric, the two-phase XCLUSTERBUILD algorithm, and the
// embedding-based selectivity estimation framework built on the
// generalized Path-Value Independence assumption.
package core

import (
	"fmt"
	"sort"

	"xcluster/internal/vsum"
	"xcluster/internal/xmltree"
)

// NodeID identifies a synopsis node. IDs are never reused within a
// synopsis, so stale references (e.g. queued merge candidates whose nodes
// were already consumed) are detectable.
type NodeID int

// Node is one structure-value cluster.
type Node struct {
	ID    NodeID
	Label string
	VType xmltree.ValueType
	// Count is |extent(u)|, the number of document elements in the
	// cluster.
	Count float64
	// Children maps each child synopsis node to count(u, v): the average
	// number of v-children per element of u.
	Children map[NodeID]float64
	// Parents is the reverse adjacency (ids of nodes with an edge into
	// this one).
	Parents map[NodeID]struct{}
	// VSum summarizes the cluster's value distribution; nil for
	// structure-only nodes and for value nodes outside the configured
	// value paths.
	VSum vsum.Summary
	// Path is the incoming root label path of the cluster in the
	// reference synopsis (informational; merged nodes keep the first).
	Path string
}

// HasValues reports whether the node carries a value summary.
func (n *Node) HasValues() bool { return n.VSum != nil }

// Synopsis is an XCluster summary: a directed graph of structure-value
// clusters plus the document's term dictionary (needed to resolve TEXT
// predicates during estimation).
type Synopsis struct {
	nodes  map[NodeID]*Node
	rootID NodeID
	nextID NodeID
	edges  int // maintained by setEdge/dropEdge; O(1) StructBytes
	dict   *xmltree.Dict
	// fp is the build identity (doc hash, budgets, generation); see
	// fingerprint.go. Zero for legacy artifacts.
	fp Fingerprint
}

// Storage accounting (bytes), matching the budget semantics of the
// paper's experiments: Bstr covers nodes, edges and edge counts; Bval
// covers the value summaries.
const (
	// NodeBytes charges a label id and an element count per node.
	NodeBytes = 6
	// EdgeBytes charges a target id and an average child count per edge.
	EdgeBytes = 8
)

// newSynopsis returns an empty synopsis bound to dict.
func newSynopsis(dict *xmltree.Dict) *Synopsis {
	if dict == nil {
		dict = xmltree.NewDict()
	}
	return &Synopsis{nodes: make(map[NodeID]*Node), rootID: -1, dict: dict}
}

// addNode creates a node with a fresh id.
func (s *Synopsis) addNode(label string, vt xmltree.ValueType) *Node {
	n := &Node{
		ID:       s.nextID,
		Label:    label,
		VType:    vt,
		Children: make(map[NodeID]float64),
		Parents:  make(map[NodeID]struct{}),
	}
	s.nextID++
	s.nodes[n.ID] = n
	return n
}

// setEdge installs or updates the edge u -> v with the given average
// child count, maintaining reverse adjacency and the edge counter.
func (s *Synopsis) setEdge(u, v *Node, avg float64) {
	if _, ok := u.Children[v.ID]; !ok {
		s.edges++
	}
	u.Children[v.ID] = avg
	v.Parents[u.ID] = struct{}{}
}

// dropEdge removes the edge u -> v if present (reverse adjacency is the
// caller's responsibility when v is being detached wholesale).
func (s *Synopsis) dropEdge(u *Node, vid NodeID) {
	if _, ok := u.Children[vid]; ok {
		delete(u.Children, vid)
		s.edges--
	}
}

// Root returns the synopsis node of the document root element.
func (s *Synopsis) Root() *Node { return s.nodes[s.rootID] }

// Node returns the node with the given id (nil if absent, e.g. merged
// away).
func (s *Synopsis) Node(id NodeID) *Node { return s.nodes[id] }

// Dict returns the term dictionary used for TEXT predicate resolution.
func (s *Synopsis) Dict() *xmltree.Dict { return s.dict }

// NumNodes returns the number of clusters.
func (s *Synopsis) NumNodes() int { return len(s.nodes) }

// NumValueNodes returns the number of clusters carrying value summaries.
func (s *Synopsis) NumValueNodes() int {
	n := 0
	for _, u := range s.nodes {
		if u.HasValues() {
			n++
		}
	}
	return n
}

// NumEdges returns the number of synopsis edges.
func (s *Synopsis) NumEdges() int { return s.edges }

// StructBytes returns the structural storage charge (nodes + edges +
// edge counts).
func (s *Synopsis) StructBytes() int {
	return s.NumNodes()*NodeBytes + s.NumEdges()*EdgeBytes
}

// ValueBytes returns the total storage charge of all value summaries.
func (s *Synopsis) ValueBytes() int {
	n := 0
	for _, u := range s.nodes {
		if u.VSum != nil {
			n += u.VSum.SizeBytes()
		}
	}
	return n
}

// TotalBytes returns StructBytes + ValueBytes.
func (s *Synopsis) TotalBytes() int { return s.StructBytes() + s.ValueBytes() }

// Nodes returns the nodes sorted by id (deterministic iteration).
func (s *Synopsis) Nodes() []*Node {
	out := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clone deep-copies the synopsis structure. Value summaries are shared:
// every mutation path in this package replaces a node's summary rather
// than mutating it, so sharing is safe.
func (s *Synopsis) Clone() *Synopsis {
	out := &Synopsis{
		nodes:  make(map[NodeID]*Node, len(s.nodes)),
		rootID: s.rootID,
		nextID: s.nextID,
		edges:  s.edges,
		dict:   s.dict,
		fp:     s.fp,
	}
	for id, n := range s.nodes {
		cp := &Node{
			ID:       n.ID,
			Label:    n.Label,
			VType:    n.VType,
			Count:    n.Count,
			Children: make(map[NodeID]float64, len(n.Children)),
			Parents:  make(map[NodeID]struct{}, len(n.Parents)),
			VSum:     n.VSum,
			Path:     n.Path,
		}
		for c, avg := range n.Children {
			cp.Children[c] = avg
		}
		for p := range n.Parents {
			cp.Parents[p] = struct{}{}
		}
		out.nodes[id] = cp
	}
	return out
}

// Levels assigns each node its level: the length of the shortest outgoing
// path to a leaf descendant (leaves are level 0), the bottom-up ordering
// used by the build_pool heuristic. Nodes on all-cycle paths (no leaf
// reachable) get level maxInt.
func (s *Synopsis) Levels() map[NodeID]int {
	const inf = int(^uint(0) >> 1)
	lvl := make(map[NodeID]int, len(s.nodes))
	queue := make([]NodeID, 0, len(s.nodes))
	for id, n := range s.nodes {
		if len(n.Children) == 0 {
			lvl[id] = 0
			queue = append(queue, id)
		} else {
			lvl[id] = inf
		}
	}
	// BFS over reverse edges relaxes level(u) = 1 + min(level(child)).
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for p := range s.nodes[id].Parents {
			if cand := lvl[id] + 1; cand < lvl[p] {
				lvl[p] = cand
				queue = append(queue, p)
			}
		}
	}
	return lvl
}

// Validate checks graph invariants: the root exists, adjacency is
// consistent in both directions, counts and edge averages are
// non-negative, and value summaries type-check and validate.
func (s *Synopsis) Validate() error {
	if s.Root() == nil {
		return fmt.Errorf("core: synopsis has no root")
	}
	recount := 0
	for id, n := range s.nodes {
		recount += len(n.Children)
		if n.ID != id {
			return fmt.Errorf("core: node %d indexed under %d", n.ID, id)
		}
		if n.Count <= 0 {
			return fmt.Errorf("core: node %d (%s) has count %g", id, n.Label, n.Count)
		}
		for c, avg := range n.Children {
			child := s.nodes[c]
			if child == nil {
				return fmt.Errorf("core: node %d has edge to missing node %d", id, c)
			}
			if avg < 0 {
				return fmt.Errorf("core: edge %d->%d has negative count %g", id, c, avg)
			}
			if _, ok := child.Parents[id]; !ok {
				return fmt.Errorf("core: edge %d->%d missing reverse link", id, c)
			}
		}
		for p := range n.Parents {
			parent := s.nodes[p]
			if parent == nil {
				return fmt.Errorf("core: node %d has missing parent %d", id, p)
			}
			if _, ok := parent.Children[id]; !ok {
				return fmt.Errorf("core: parent link %d->%d without edge", p, id)
			}
		}
		if n.VSum != nil {
			if n.VSum.Type() != n.VType {
				return fmt.Errorf("core: node %d type %v has %v summary", id, n.VType, n.VSum.Type())
			}
			if err := n.VSum.Validate(); err != nil {
				return fmt.Errorf("core: node %d summary: %w", id, err)
			}
		}
	}
	if recount != s.edges {
		return fmt.Errorf("core: edge counter %d, actual edges %d", s.edges, recount)
	}
	return nil
}

// TotalExtent returns the sum of cluster cardinalities (equals the
// document element count for a lossless partition).
func (s *Synopsis) TotalExtent() float64 {
	total := 0.0
	for _, n := range s.nodes {
		total += n.Count
	}
	return total
}
