package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/vsum"
	"xcluster/internal/xmltree"
)

// figure1 builds the document of Figure 1: author a1 with papers p2
// (year/title/keywords) and p7 (year/title/abstract), author a11 with
// book b13 (year/title/foreword).
func figure1(t testing.TB) *xmltree.Tree {
	t.Helper()
	b := xmltree.NewBuilder(nil)
	b.Open("dblp")
	b.Open("author")
	b.String("name", "First Author")
	b.Open("paper")
	b.Numeric("year", 2000)
	b.String("title", "Counting Twig Matches in a Tree")
	b.Text("keywords", "xml summary synopsis estimation structure")
	b.Close()
	b.Open("paper")
	b.Numeric("year", 2002)
	b.String("title", "Holistic Processing")
	b.Text("abstract", "xml employs a tree structured data model with synopsis support")
	b.Close()
	b.Close()
	b.Open("author")
	b.String("name", "Second Author")
	b.Open("book")
	b.Numeric("year", 2002)
	b.String("title", "Database Systems The Complete Book")
	b.Text("foreword", "database systems have become essential infrastructure everywhere")
	b.Close()
	b.Close()
	b.Close()
	return b.Tree()
}

func TestBuildReferenceFigure1(t *testing.T) {
	tr := figure1(t)
	s, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Lossless partition: extents cover the document.
	if got := s.TotalExtent(); got != float64(tr.Len()) {
		t.Fatalf("TotalExtent = %g, want %d", got, tr.Len())
	}
	// The two authors have different subtree structures (papers vs book)
	// so they must land in different clusters; same for the two kinds of
	// paper (keywords vs abstract).
	byLabel := make(map[string][]*Node)
	for _, n := range s.Nodes() {
		byLabel[n.Label] = append(byLabel[n.Label], n)
	}
	if len(byLabel["author"]) != 2 {
		t.Fatalf("author clusters = %d, want 2", len(byLabel["author"]))
	}
	if len(byLabel["paper"]) != 2 {
		t.Fatalf("paper clusters = %d, want 2", len(byLabel["paper"]))
	}
	// One incoming path per cluster: year under paper vs book separated.
	yearPaths := make(map[string]bool)
	for _, n := range byLabel["year"] {
		yearPaths[n.Path] = true
	}
	if !yearPaths["/dblp/author/paper/year"] || !yearPaths["/dblp/author/book/year"] {
		t.Fatalf("year cluster paths = %v", yearPaths)
	}
	// Value summaries present on value clusters.
	for _, n := range s.Nodes() {
		if n.VType != xmltree.TypeNull && !n.HasValues() {
			t.Fatalf("value cluster %s lacks a summary", n.Path)
		}
	}
	// Root cluster.
	if s.Root().Label != "dblp" || s.Root().Count != 1 {
		t.Fatalf("root = %+v", s.Root())
	}
}

func TestBuildReferenceValuePathFilter(t *testing.T) {
	tr := figure1(t)
	s, err := BuildReference(tr, ReferenceOptions{
		ValuePaths: []string{"/dblp/author/paper/year"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Nodes() {
		want := n.Path == "/dblp/author/paper/year"
		if n.HasValues() != want {
			t.Fatalf("cluster %s: HasValues = %v, want %v", n.Path, n.HasValues(), want)
		}
	}
}

func TestBuildTagSynopsisFigure3(t *testing.T) {
	tr := figure1(t)
	s, err := BuildTagSynopsis(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 3 cluster counts: D(1) A(2) N(2) P(2) B(1) Y(3) T(3) K(1)
	// AB(1) F(1).
	want := map[string]float64{
		"dblp": 1, "author": 2, "name": 2, "paper": 2, "book": 1,
		"year": 3, "title": 3, "keywords": 1, "abstract": 1, "foreword": 1,
	}
	got := make(map[string]float64)
	for _, n := range s.Nodes() {
		got[n.Label] += n.Count
	}
	for label, cnt := range want {
		if got[label] != cnt {
			t.Errorf("count(%s) = %g, want %g", label, got[label], cnt)
		}
	}
	if s.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", s.NumNodes())
	}
	// Figure 3 edge counts: count(A,P) = 1, count(A,B) = 0.5,
	// count(P,K) = 0.5, count(D,A) = 2.
	find := func(label string) *Node {
		for _, n := range s.Nodes() {
			if n.Label == label {
				return n
			}
		}
		t.Fatalf("no cluster %s", label)
		return nil
	}
	a, p, d := find("author"), find("paper"), find("dblp")
	if got := a.Children[p.ID]; got != 1 {
		t.Errorf("count(A,P) = %g, want 1", got)
	}
	if got := a.Children[find("book").ID]; got != 0.5 {
		t.Errorf("count(A,B) = %g, want 0.5", got)
	}
	if got := p.Children[find("keywords").ID]; got != 0.5 {
		t.Errorf("count(P,K) = %g, want 0.5", got)
	}
	if got := d.Children[a.ID]; got != 2 {
		t.Errorf("count(D,A) = %g, want 2", got)
	}
}

// TestEstimateFigure7 reconstructs the worked example of Figure 7: the
// estimate for //A[/B/C[p]]//E must be 500 binding tuples.
func TestEstimateFigure7(t *testing.T) {
	s := newSynopsis(nil)
	r := s.addNode("R", xmltree.TypeNull)
	r.Count = 1
	s.rootID = r.ID
	a := s.addNode("A", xmltree.TypeNull)
	a.Count = 10
	bn := s.addNode("B", xmltree.TypeNull)
	bn.Count = 100
	c := s.addNode("C", xmltree.TypeNumeric)
	c.Count = 500
	d := s.addNode("D", xmltree.TypeNull)
	d.Count = 50
	e := s.addNode("E", xmltree.TypeNull)
	e.Count = 100
	s.setEdge(r, a, 10)
	s.setEdge(a, bn, 10)
	s.setEdge(bn, c, 5)
	s.setEdge(a, d, 5)
	s.setEdge(d, e, 2)
	// vsumm(C): 10% of values in [0,0].
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = i
	}
	c.VSum = vsum.NewNumeric(vals, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	est := NewEstimator(s)
	q := query.MustParse("//A[./B/C[range(0,0)]]//E")
	got := est.Selectivity(q)
	if math.Abs(got-500) > 1e-6 {
		t.Fatalf("Figure 7 estimate = %g, want 500", got)
	}
}

func TestReferenceEstimatesAreExactForStructure(t *testing.T) {
	tr := figure1(t)
	s, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(s)
	ev := query.NewEvaluator(tr)
	queries := []string{
		"//paper", "//author", "//paper/title", "//year", "//book/year",
		"/dblp/author", "/dblp//title", "//author/paper", "//*",
		"//author[./paper]", "//author[./book/year]",
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		got, want := est.Selectivity(q), ev.Selectivity(q)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("s(%s): estimated %g, exact %g", qs, got, want)
		}
	}
}

func TestReferenceEstimatesValuePredicates(t *testing.T) {
	tr := figure1(t)
	s, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(s)
	ev := query.NewEvaluator(tr)
	queries := []string{
		"//paper[year>2000]",
		"//paper[year>2001]/title",
		"//year[range(2000,2002)]",
		"//title[contains(Tree)]",
		"//paper[keywords ftcontains(xml)]",
		"//book[foreword ftcontains(database)]",
		"//paper[abstract ftcontains(synopsis,xml)]",
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		got, want := est.Selectivity(q), ev.Selectivity(q)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("s(%s): estimated %g, exact %g", qs, got, want)
		}
	}
	// A genuinely negative query stays at zero.
	for _, qs := range []string{
		"//paper[year>2050]",
		"//title[contains(zzz)]",
		"//paper[keywords ftcontains(quantum)]",
	} {
		if got := est.Selectivity(query.MustParse(qs)); got != 0 {
			t.Errorf("s(%s) = %g, want 0", qs, got)
		}
	}
}

func TestMergeSemantics(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildReference(tr, ReferenceOptions{})
	// Find the two paper clusters.
	var papers []*Node
	for _, n := range s.Nodes() {
		if n.Label == "paper" {
			papers = append(papers, n)
		}
	}
	if len(papers) != 2 {
		t.Fatalf("papers = %d", len(papers))
	}
	nodesBefore := s.NumNodes()
	u, v := papers[0], papers[1]
	childTotals := make(map[NodeID]float64)
	for _, x := range []*Node{u, v} {
		for c, avg := range x.Children {
			childTotals[c] += x.Count * avg
		}
	}
	w, err := s.Merge(u.ID, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != nodesBefore-1 {
		t.Fatalf("NumNodes = %d, want %d", s.NumNodes(), nodesBefore-1)
	}
	if w.Count != u.Count+v.Count {
		t.Fatalf("count(w) = %g", w.Count)
	}
	// Weighted centroid: total children preserved.
	for c, totalBefore := range childTotals {
		if got := w.Count * w.Children[c]; math.Abs(got-totalBefore) > 1e-9 {
			t.Errorf("child %d: total %g, want %g", c, got, totalBefore)
		}
	}
	// Parent edge counts summed: the two author clusters each point to w
	// with their original totals.
	for p := range w.Parents {
		parent := s.Node(p)
		if parent.Children[w.ID] <= 0 {
			t.Errorf("parent %d lost its edge count", p)
		}
	}
	// Structural queries stay exact (total paper count is preserved).
	est := NewEstimator(s)
	if got := est.Selectivity(query.MustParse("//paper")); math.Abs(got-2) > 1e-9 {
		t.Fatalf("s(//paper) after merge = %g", got)
	}
}

func TestMergeIncompatible(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildReference(tr, ReferenceOptions{})
	var paper, book *Node
	for _, n := range s.Nodes() {
		switch n.Label {
		case "paper":
			paper = n
		case "book":
			book = n
		}
	}
	if _, err := s.Merge(paper.ID, book.ID); err == nil {
		t.Fatal("merged different labels")
	}
	if _, err := s.Merge(paper.ID, paper.ID); err == nil {
		t.Fatal("merged a node with itself")
	}
	if _, err := s.Merge(paper.ID, NodeID(9999)); err == nil {
		t.Fatal("merged a missing node")
	}
}

func TestMergeDeltaZeroForIdenticalClusters(t *testing.T) {
	// Two clusters with identical structural centroids and value
	// distributions: Δ must be 0 (a free merge).
	s := newSynopsis(nil)
	r := s.addNode("R", xmltree.TypeNull)
	r.Count = 1
	s.rootID = r.ID
	u := s.addNode("X", xmltree.TypeNumeric)
	u.Count = 4
	v := s.addNode("X", xmltree.TypeNumeric)
	v.Count = 6
	s.setEdge(r, u, 4)
	s.setEdge(r, v, 6)
	u.VSum = vsum.NewNumeric([]int{1, 1, 2, 2}, 0)
	v.VSum = vsum.NewNumeric([]int{1, 1, 1, 2, 2, 2}, 0)
	delta, saved, err := s.MergeDelta(u.ID, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Fatalf("Δ = %g, want 0", delta)
	}
	if saved <= 0 {
		t.Fatalf("saved = %d", saved)
	}
}

func TestMergeDeltaPositiveForDifferentDistributions(t *testing.T) {
	s := newSynopsis(nil)
	r := s.addNode("R", xmltree.TypeNull)
	r.Count = 1
	s.rootID = r.ID
	u := s.addNode("X", xmltree.TypeNumeric)
	u.Count = 4
	v := s.addNode("X", xmltree.TypeNumeric)
	v.Count = 4
	s.setEdge(r, u, 4)
	s.setEdge(r, v, 4)
	u.VSum = vsum.NewNumeric([]int{1, 1, 1, 1}, 0)
	v.VSum = vsum.NewNumeric([]int{100, 100, 100, 100}, 0)
	delta, _, err := s.MergeDelta(u.ID, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("Δ = %g, want > 0 for disjoint distributions", delta)
	}
}

func TestMergeDeltaStructuralDifference(t *testing.T) {
	// Structure-only clusters with different centroids.
	s := newSynopsis(nil)
	r := s.addNode("R", xmltree.TypeNull)
	r.Count = 1
	s.rootID = r.ID
	u := s.addNode("X", xmltree.TypeNull)
	u.Count = 2
	v := s.addNode("X", xmltree.TypeNull)
	v.Count = 2
	leaf := s.addNode("L", xmltree.TypeNull)
	leaf.Count = 20
	s.setEdge(r, u, 2)
	s.setEdge(r, v, 2)
	s.setEdge(u, leaf, 10) // u-elements have 10 L-children
	s.setEdge(v, leaf, 0)  // v-elements have none (edge with zero avg)
	delta, _, err := s.MergeDelta(u.ID, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After the merge each element claims 5 L-children: squared error
	// 2*(10-5)^2 + 2*(0-5)^2 = 100.
	if math.Abs(delta-100) > 1e-9 {
		t.Fatalf("Δ = %g, want 100", delta)
	}
}

func TestCompressDelta(t *testing.T) {
	s := newSynopsis(nil)
	r := s.addNode("R", xmltree.TypeNull)
	r.Count = 1
	s.rootID = r.ID
	u := s.addNode("Y", xmltree.TypeNumeric)
	u.Count = 4
	s.setEdge(r, u, 4)
	u.VSum = vsum.NewNumeric([]int{1, 2, 50, 100}, 0)
	cs, _, steps := u.VSum.Compress(1)
	if steps == 0 {
		t.Fatal("no compression")
	}
	delta, err := s.CompressDelta(u.ID, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta < 0 {
		t.Fatalf("Δ = %g", delta)
	}
	// Compressing a leaf with identical summary → zero delta.
	if d, _ := s.CompressDelta(u.ID, u.VSum, 0); d != 0 {
		t.Fatalf("self delta = %g", d)
	}
}

func TestXClusterBuildRespectsBudgets(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := XClusterBuild(ref, BuildOptions{
		StructBudget: ref.StructBytes() / 2,
		ValueBudget:  ref.ValueBytes() / 2,
		Hm:           100, Hl: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Merging cannot go below one cluster per (label, type): the
	// tag-level synopsis is the floor (the paper's 0KB baseline).
	tag, _ := BuildTagSynopsis(tr, ReferenceOptions{})
	floor := tag.StructBytes()
	if budget := ref.StructBytes() / 2; s.StructBytes() > max(budget, floor) {
		t.Errorf("struct bytes %d > max(budget %d, floor %d)", s.StructBytes(), budget, floor)
	}
	if s.ValueBytes() > ref.ValueBytes()/2 {
		t.Errorf("value bytes %d > budget %d", s.ValueBytes(), ref.ValueBytes()/2)
	}
	// The reference is untouched.
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	// Extent coverage preserved by merging.
	if got := s.TotalExtent(); got != float64(tr.Len()) {
		t.Fatalf("TotalExtent = %g, want %d", got, tr.Len())
	}
}

func TestXClusterBuildEstimatesStayReasonable(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	s, err := XClusterBuild(ref, BuildOptions{
		StructBudget: 0, // coarsest structure
		ValueBudget:  ref.ValueBytes(),
		Hm:           100, Hl: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(s)
	// Total element counts per tag survive any merging.
	if got := est.Selectivity(query.MustParse("//paper")); math.Abs(got-2) > 1e-9 {
		t.Fatalf("s(//paper) = %g", got)
	}
	if got := est.Selectivity(query.MustParse("//year")); math.Abs(got-3) > 1e-9 {
		t.Fatalf("s(//year) = %g", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildReference(tr, ReferenceOptions{})
	c := s.Clone()
	var papers []*Node
	for _, n := range c.Nodes() {
		if n.Label == "paper" {
			papers = append(papers, n)
		}
	}
	if _, err := c.Merge(papers[0].ID, papers[1].ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("mutating clone corrupted original: %v", err)
	}
	if s.NumNodes() == c.NumNodes() {
		t.Fatal("clone shares node map")
	}
}

func TestLevels(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildReference(tr, ReferenceOptions{})
	levels := s.Levels()
	for _, n := range s.Nodes() {
		if len(n.Children) == 0 && levels[n.ID] != 0 {
			t.Errorf("leaf %s has level %d", n.Path, levels[n.ID])
		}
	}
	// Root has the longest shortest-path: at least 2 in this document
	// (dblp -> author -> name).
	if levels[s.Root().ID] < 2 {
		t.Errorf("root level = %d", levels[s.Root().ID])
	}
}

func TestEstimatorHandlesCycles(t *testing.T) {
	// A synopsis with a self-loop (possible after merging nested
	// same-label clusters) must not hang or return infinities.
	s := newSynopsis(nil)
	r := s.addNode("R", xmltree.TypeNull)
	r.Count = 1
	s.rootID = r.ID
	x := s.addNode("X", xmltree.TypeNull)
	x.Count = 10
	s.setEdge(r, x, 3)
	s.setEdge(x, x, 0.5) // self-loop
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(s)
	got := est.Selectivity(query.MustParse("//X"))
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("cyclic estimate = %g", got)
	}
}

func TestStructBytesAccounting(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildReference(tr, ReferenceOptions{})
	want := s.NumNodes()*NodeBytes + s.NumEdges()*EdgeBytes
	if got := s.StructBytes(); got != want {
		t.Fatalf("StructBytes = %d, want %d", got, want)
	}
	if s.TotalBytes() != s.StructBytes()+s.ValueBytes() {
		t.Fatal("TotalBytes mismatch")
	}
}

func TestWriteDOT(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildTagSynopsis(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if err := s.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph xcluster", "paper", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	_ = s.WriteDOT(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("WriteDOT not deterministic")
	}
}

func TestSynopsisAccessors(t *testing.T) {
	tr := figure1(t)
	s, _ := BuildReference(tr, ReferenceOptions{})
	if s.Dict() == nil {
		t.Fatal("nil dict")
	}
	if got := s.NumValueNodes(); got == 0 || got > s.NumNodes() {
		t.Fatalf("NumValueNodes = %d of %d", got, s.NumNodes())
	}
}
