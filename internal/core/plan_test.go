package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xcluster/internal/query"
)

// planQueries is a workload spanning every pipeline feature: child and
// descendant axes, wildcards, multi-step edges, branching twigs,
// multiple predicates per query, all four predicate kinds, and
// zero-selectivity shapes.
var planQueries = []string{
	"//paper",
	"//paper/title",
	"/dblp/author/paper/year",
	"//author//title",
	"//*",
	"//*/year",
	"//author/*/title",
	"//paper[year>2000]",
	"//paper[year range(1999,2001)]/title",
	"//title[contains(Tree)]",
	"//paper[abstract ftcontains(xml,synopsis)]",
	"//keywords[ftsim(1,xml,quantum)]",
	"//paper[abstract ftsim(2,xml,synopsis)]",
	"//author[./paper[year>2001]][./paper/keywords]/name",
	"//author[.//title[contains(Book)]]",
	"//nosuchtag",
	"//paper[year>2999]",
	"//paper[title contains(zzzznothing)]",
	"//book[foreword ftcontains(database)]/title",
	"//author[name contains(Author)]//year",
}

// planEstimators builds estimators over the figure-1 reference and a
// heavily merged compression of it, so plans are exercised both on
// tight single-element clusters and on merged multi-path clusters.
func planEstimators(t *testing.T) map[string]*Estimator {
	t.Helper()
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := XClusterBuild(ref, BuildOptions{StructBudget: 128, ValueBudget: 128})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Estimator{
		"reference": NewEstimator(ref),
		"merged":    NewEstimator(merged),
	}
}

// TestCompiledMatchesInterpreter pins the tentpole invariant: for every
// query shape, the compiled plan's result equals the original memoized
// interpreter's bit-for-bit, through Selectivity, SelectivityContext,
// and PreparedQuery execution.
func TestCompiledMatchesInterpreter(t *testing.T) {
	for name, est := range planEstimators(t) {
		est.SetCacheCapacity(0) // estimates must come from execution, not the result cache
		for _, qs := range planQueries {
			q := query.MustParse(qs)
			want := est.interpretedSelectivity(q)
			if got := est.Selectivity(q); got != want {
				t.Errorf("%s: Selectivity(%s) = %v, interpreter %v", name, qs, got, want)
			}
			if got, err := est.SelectivityContext(context.Background(), q); err != nil || got != want {
				t.Errorf("%s: SelectivityContext(%s) = %v, %v, interpreter %v", name, qs, got, err, want)
			}
			pq, err := est.Prepare(q)
			if err != nil {
				t.Fatalf("%s: Prepare(%s): %v", name, qs, err)
			}
			if got := pq.Selectivity(); got != want {
				t.Errorf("%s: Prepared(%s) = %v, interpreter %v", name, qs, got, want)
			}
			if got, err := pq.SelectivityContext(context.Background()); err != nil || got != want {
				t.Errorf("%s: PreparedContext(%s) = %v, %v, interpreter %v", name, qs, got, err, want)
			}
		}
	}
}

// TestPreparedConcurrentExecution executes every prepared plan from 16
// goroutines at once; every result must equal the sequential answer
// bit-for-bit (run under -race).
func TestPreparedConcurrentExecution(t *testing.T) {
	est := planEstimators(t)["merged"]
	prepared := make([]*PreparedQuery, len(planQueries))
	want := make([]float64, len(planQueries))
	for i, qs := range planQueries {
		q := query.MustParse(qs)
		pq, err := est.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = pq
		want[i] = est.interpretedSelectivity(q)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < 200; r++ {
				i := rng.Intn(len(prepared))
				if got := prepared[i].Selectivity(); got != want[i] {
					errs <- &planMismatch{q: planQueries[i], got: got, want: want[i]}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type planMismatch struct {
	q         string
	got, want float64
}

func (e *planMismatch) Error() string { return e.q }

// TestPlanCache checks compile-once/execute-many accounting: the first
// Prepare of a shape misses the plan cache and compiles; repeats (and
// uncached Selectivity calls on the same shape) hit it and share the
// identical plan.
func TestPlanCache(t *testing.T) {
	est := planEstimators(t)["reference"]
	est.SetCacheCapacity(0)
	q := query.MustParse("//paper[year>2000]/title")

	pq1, err := est.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := est.PlanCacheStats(); st.Misses != 1 || st.Hits != 0 || st.Len != 1 {
		t.Fatalf("after first Prepare: %+v", st)
	}
	pq2, err := est.Prepare(query.MustParse("//paper[year>2000]/title"))
	if err != nil {
		t.Fatal(err)
	}
	if pq1.plan != pq2.plan {
		t.Fatal("re-Prepare of the same shape did not share the plan")
	}
	est.Selectivity(q) // uncached result → plan-cache hit
	if st := est.PlanCacheStats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("after reuse: %+v", st)
	}

	// Disabling the plan cache recompiles per call and reports zeros.
	est.SetPlanCacheCapacity(0)
	if _, err := est.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if st := est.PlanCacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled plan cache reports %+v", st)
	}
}

// TestPlanCacheSaltedByUninformedSel checks that plans compiled under
// different UninformedSel configurations do not collide: the bound
// predicate selectivities differ.
func TestPlanCacheSaltedByUninformedSel(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{ValuePaths: []string{"/dblp/author/paper/year"}})
	if err != nil {
		t.Fatal(err)
	}
	// foreword is TEXT but outside the value paths → unsummarized.
	q := query.MustParse("//book[foreword ftcontains(database)]")
	est := NewEstimator(ref)
	est.SetCacheCapacity(0)
	if got := est.Selectivity(q); got != 0 {
		t.Fatalf("uninformed=0 estimate = %v, want 0", got)
	}
	est2 := NewEstimator(ref)
	est2.SetCacheCapacity(0)
	est2.UninformedSel = 1
	if got := est2.Selectivity(q); got != 1 {
		t.Fatalf("uninformed=1 estimate = %v, want 1", got)
	}
	// One estimator reconfigured between compiles must not reuse the
	// stale plan (cacheKey salts with UninformedSel).
	est3 := NewEstimator(ref)
	est3.SetCacheCapacity(0)
	a := est3.Selectivity(q)
	est3.UninformedSel = 1
	b := est3.Selectivity(q)
	if a != 0 || b != 1 {
		t.Fatalf("salted plan cache: got %v then %v, want 0 then 1", a, b)
	}
}

// TestExplainPlan checks the rendered plan names the resolved clusters
// and subproblem structure.
func TestExplainPlan(t *testing.T) {
	est := planEstimators(t)["reference"]
	pq, err := est.Prepare(query.MustParse("//paper[year>2000]/title"))
	if err != nil {
		t.Fatal(err)
	}
	out := pq.ExplainPlan()
	for _, want := range []string{"plan //paper[", "range(2001,", "subproblems", "lowered steps", "title", "s0"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainPlan output missing %q:\n%s", want, out)
		}
	}
	if pq.Query() != query.MustParse("//paper[year>2000]/title").String() {
		t.Errorf("Query() = %q", pq.Query())
	}
	if pq.plan.NumSubproblems() == 0 || len(pq.plan.sortedSubIDs()) == 0 {
		t.Error("plan has no subproblems or clusters")
	}
}

// TestCompileRejectsStepless checks that a hand-built variable with no
// steps is a compile error (the interpreter panicked on it), and that
// Prepare surfaces it gracefully.
func TestCompileRejectsStepless(t *testing.T) {
	est := planEstimators(t)["reference"]
	bad := &query.Query{Roots: []*query.Node{{}}}
	if _, err := est.Prepare(bad); err == nil {
		t.Fatal("Prepare accepted a stepless variable")
	}
	if _, err := est.SelectivityContext(context.Background(), bad); err == nil {
		t.Fatal("SelectivityContext accepted a stepless variable")
	}
}

// TestReachSingleChildFastPath pins the A/B fast path to the generic
// frontier propagation: forcing multi-step traversal through a
// preceding wildcard descendant step must agree with the single-step
// shape on every suffix.
func TestReachSingleChildFastPath(t *testing.T) {
	est := planEstimators(t)["merged"]
	est.SetCacheCapacity(0)
	for _, pair := range [][2]string{
		{"//author/paper", "//author[./paper]"},
		{"//paper/title", "//paper[./title]"},
		{"//author/nosuch", "//author[./nosuch]"},
	} {
		a := est.Selectivity(query.MustParse(pair[0]))
		b := est.Selectivity(query.MustParse(pair[1]))
		if a != b {
			t.Errorf("fast path: %s = %v, %s = %v", pair[0], a, pair[1], b)
		}
	}
	// Direct comparison: reach via the fast path equals a frontier
	// rebuilt through the slow map+sort route (two-step //*/child).
	for id := range est.s.nodes {
		fast := est.reach(id, []query.Step{{Axis: query.Child, Label: "title"}})
		slow := est.reach(id, []query.Step{{Axis: query.Child, Label: query.Wildcard}})
		want := 0.0
		for _, w := range fast {
			want += w.w
		}
		got := 0.0
		for _, w := range slow {
			if est.s.nodes[w.id].Label == "title" {
				got += w.w
			}
		}
		if got != want {
			t.Errorf("node %d: fast-path title mass %v, wildcard-filtered %v", id, want, got)
		}
	}
}
