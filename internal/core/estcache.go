package core

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheStats is a snapshot of one of the estimator's LRU caches (query
// results or compiled plans).
type CacheStats struct {
	// Hits and Misses count cache lookups since construction (or the
	// last capacity change).
	Hits, Misses uint64
	// Evictions counts entries displaced by capacity pressure (stale
	// epoch drops and purges are not evictions). In a multi-tenant
	// catalog, a tenant's eviction count can only be driven by its own
	// traffic — each shard owns its caches — which the isolation tests
	// assert.
	Evictions uint64
	// Len is the current number of cached entries; Capacity the maximum.
	Len, Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// lruCache is a mutex-guarded LRU of canonical query string → V, shared
// by the result cache (V = float64) and the plan cache (V = *Plan).
// Entries are immutable once inserted (estimates and plans over an
// immutable synopsis never change), so a hit can be returned without
// copying. Hit/miss counters are atomics so they never contend with the
// list manipulation.
//
// The cache is epoch-aware: every entry is stamped with the value of the
// shared epoch counter at insertion, and a lookup only hits when the
// entry's stamp matches the current epoch. Bumping the counter therefore
// invalidates every cache sharing it in one atomic store — the result
// and plan caches of an estimator can never serve values from different
// epochs, even mid-swap while a slow writer races the bump.
type lruCache[V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	// epoch is the shared invalidation counter (owned by the Estimator;
	// the same counter backs both of its caches).
	epoch *atomic.Uint64
}

// cacheEntry is one LRU element.
type cacheEntry[V any] struct {
	key   string
	val   V
	epoch uint64 // epoch counter value at insertion
}

func newLRUCache[V any](capacity int, epoch *atomic.Uint64) *lruCache[V] {
	return &lruCache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		epoch:    epoch,
	}
}

// get returns the cached value for key and whether it was present.
// Entries stamped with a stale epoch are dropped and count as misses.
func (c *lruCache[V]) get(key string) (V, bool) {
	now := c.epoch.Load()
	c.mu.Lock()
	el, ok := c.items[key]
	if ok && el.Value.(*cacheEntry[V]).epoch != now {
		c.ll.Remove(el)
		delete(c.items, key)
		ok = false
	}
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	v := el.Value.(*cacheEntry[V]).val
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// put inserts key → val stamped with the current epoch, evicting the
// least recently used entry when the cache is full. Concurrent puts of
// the same key are idempotent (both goroutines computed the same
// deterministic value).
func (c *lruCache[V]) put(key string, val V) {
	now := c.epoch.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry[V])
		ent.val = val
		ent.epoch = now
		return
	}
	el := c.ll.PushFront(&cacheEntry[V]{key: key, val: val, epoch: now})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry[V]).key)
		c.evictions.Add(1)
	}
}

// purge eagerly drops every entry (stale entries would otherwise only be
// reclaimed lazily on lookup). Counters are kept.
func (c *lruCache[V]) purge() {
	c.mu.Lock()
	c.ll.Init()
	clear(c.items)
	c.mu.Unlock()
}

// stats snapshots the counters and occupancy.
func (c *lruCache[V]) stats() CacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Len:       n,
		Capacity:  c.capacity,
	}
}
