package core

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheStats is a snapshot of the estimator's query-result cache.
type CacheStats struct {
	// Hits and Misses count cache lookups since construction (or the
	// last SetCacheCapacity).
	Hits, Misses uint64
	// Len is the current number of cached queries; Capacity the maximum.
	Len, Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// queryCache is a mutex-guarded LRU of canonical query string → computed
// selectivity. Entries are immutable once inserted (estimates over an
// immutable synopsis never change), so a hit can be returned without
// copying. Hit/miss counters are atomics so they never contend with the
// list manipulation.
type queryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// cacheEntry is one LRU element.
type cacheEntry struct {
	key string
	val float64
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value for key and whether it was present.
func (c *queryCache) get(key string) (float64, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return 0, false
	}
	c.ll.MoveToFront(el)
	v := el.Value.(*cacheEntry).val
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// put inserts key → val, evicting the least recently used entry when the
// cache is full. Concurrent puts of the same key are idempotent (both
// goroutines computed the same deterministic estimate).
func (c *queryCache) put(key string, val float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// stats snapshots the counters and occupancy.
func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Len:      n,
		Capacity: c.capacity,
	}
}
