package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"xcluster/internal/xmltree"
)

func refFor(t *testing.T, seed int64, elements int) *Synopsis {
	t.Helper()
	tr := randomTree(rand.New(rand.NewSource(seed)), elements)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// serializeStable renders the synopsis with the build-time fields
// zeroed, so two builds of the same inputs compare byte for byte.
func serializeStable(t *testing.T, s *Synopsis) []byte {
	t.Helper()
	fp := s.Fingerprint()
	fp.BuiltAtUnix, fp.BuildNanos = 0, 0
	s.SetFingerprint(fp)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPlanFromBudgetsBitIdentical is the core half of the refactor's
// compatibility contract: a plan synthesized from the legacy Bstr/Bval
// pair must drive the exact same build as the raw ints, down to the
// serialized bytes.
func TestPlanFromBudgetsBitIdentical(t *testing.T) {
	ref := refFor(t, 11, 400)
	bstr, bval := ref.StructBytes()/3, ref.ValueBytes()/3

	legacy, err := XClusterBuild(ref, BuildOptions{StructBudget: bstr, ValueBudget: bval})
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanFromBudgets(bstr, bval)
	planned, err := XClusterBuild(ref, BuildOptions{Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := planned.Fingerprint().Plan, legacy.Fingerprint().Plan; got != want {
		t.Fatalf("stamped plans differ: %+v vs %+v", got, want)
	}
	a, b := serializeStable(t, legacy), serializeStable(t, planned)
	if !bytes.Equal(a, b) {
		t.Fatalf("legacy ints and synthesized plan produced different bytes (%d vs %d)", len(a), len(b))
	}
}

func TestBudgetPlanNormalize(t *testing.T) {
	p, err := (BudgetPlan{NodeBytes: 300, EdgeBytes: 100, HistogramBytes: 50, PSTBytes: 30, TermHistBytes: 20}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.StructBytes != 400 || p.ValueBytes != 100 || p.TotalBytes != 500 {
		t.Fatalf("derived groups wrong: %+v", p)
	}
	if p.Provenance != ProvenanceStatic {
		t.Fatalf("default provenance = %q, want static", p.Provenance)
	}
	for _, bad := range []BudgetPlan{
		{StructBytes: 10, NodeBytes: 5, EdgeBytes: 6},
		{ValueBytes: 10, HistogramBytes: 11},
		{TotalBytes: 10, StructBytes: 4, ValueBytes: 7},
		{StructBytes: -1},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Fatalf("normalize accepted inconsistent plan %+v", bad)
		}
	}
}

func TestResolvePlanConflict(t *testing.T) {
	plan := PlanFromBudgets(100, 100)
	_, err := XClusterBuild(refFor(t, 3, 120), BuildOptions{StructBudget: 999, Plan: &plan})
	if err == nil {
		t.Fatal("conflicting StructBudget and plan accepted")
	}
}

// valueBytesByKind sums the summary charge per value kind.
func valueBytesByKind(s *Synopsis) map[xmltree.ValueType]int {
	out := map[xmltree.ValueType]int{}
	for _, n := range s.Nodes() {
		if n.VSum != nil {
			out[n.VSum.Type()] += n.VSum.SizeBytes()
		}
	}
	return out
}

// TestValueSplitDirectsCompression checks that a plan's per-kind value
// split actually steers the value phase: a split that starves string
// summaries to protect term histograms must leave more termhist bytes
// (and fewer PST bytes) than the unsplit build, while the Bval total
// still holds.
func TestValueSplitDirectsCompression(t *testing.T) {
	ref := refFor(t, 17, 600)
	byKind := valueBytesByKind(ref)
	bval := ref.ValueBytes() / 2
	bstr := ref.StructBytes()

	flat, err := XClusterBuild(ref, BuildOptions{StructBudget: bstr, ValueBudget: bval})
	if err != nil {
		t.Fatal(err)
	}

	// Keep full text bytes, squeeze the rest.
	keep := byKind[xmltree.TypeText]
	rest := bval - keep
	plan := BudgetPlan{
		NodeBytes:      bstr,
		HistogramBytes: rest / 2,
		PSTBytes:       rest - rest/2,
		TermHistBytes:  keep,
	}
	split, err := XClusterBuild(ref, BuildOptions{Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if got := split.ValueBytes(); got > bval {
		t.Fatalf("split build exceeded Bval: %d > %d", got, bval)
	}
	flatKinds, splitKinds := valueBytesByKind(flat), valueBytesByKind(split)
	if splitKinds[xmltree.TypeText] < flatKinds[xmltree.TypeText] {
		t.Fatalf("protected termhist bytes shrank: split %d < flat %d",
			splitKinds[xmltree.TypeText], flatKinds[xmltree.TypeText])
	}
	if splitKinds[xmltree.TypeString] >= flatKinds[xmltree.TypeString] &&
		splitKinds[xmltree.TypeNumeric] >= flatKinds[xmltree.TypeNumeric] {
		t.Fatalf("squeezed kinds did not shrink: split %+v, flat %+v", splitKinds, flatKinds)
	}
	if got := split.Fingerprint().Plan; !got.HasValueSplit() {
		t.Fatalf("fingerprint lost the value split: %+v", got)
	}
}

// TestAutoAllocateContextCancel is the satellite cancellation contract:
// the sample-workload search must abort mid-search once its context
// ends, instead of finishing every candidate build.
func TestAutoAllocateContextCancel(t *testing.T) {
	ref := refFor(t, 29, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evals := 0
	_, _, _, err := AutoAllocateContext(ctx, ref, ref.TotalBytes()/4,
		func(*Synopsis) float64 { evals++; return 0 }, BuildOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned %v, want context.Canceled", err)
	}
	if evals != 0 {
		t.Fatalf("search scored %d candidates after cancellation", evals)
	}
}

// TestAutoAllocatePlanProvenance checks the search stamps its winner
// with an auto-provenance plan whose groups sum to the total budget.
func TestAutoAllocatePlanProvenance(t *testing.T) {
	ref := refFor(t, 31, 300)
	total := ref.TotalBytes() / 3
	s, plan, _, err := AutoAllocateContext(context.Background(), ref, total,
		func(s *Synopsis) float64 { return float64(s.NumNodes()) }, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Provenance != ProvenanceAuto {
		t.Fatalf("provenance = %q, want auto", plan.Provenance)
	}
	if plan.TotalBytes != total {
		t.Fatalf("plan total %d, want %d", plan.TotalBytes, total)
	}
	if s.Fingerprint().Plan != plan {
		t.Fatalf("winner's fingerprint plan %+v != returned plan %+v", s.Fingerprint().Plan, plan)
	}
}
