package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"xcluster/internal/query"
)

func TestCodecRoundTrip(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ref.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != ref.NumNodes() || back.NumEdges() != ref.NumEdges() {
		t.Fatalf("shape changed: %d/%d nodes, %d/%d edges",
			back.NumNodes(), ref.NumNodes(), back.NumEdges(), ref.NumEdges())
	}
	if back.StructBytes() != ref.StructBytes() || back.ValueBytes() != ref.ValueBytes() {
		t.Fatalf("size accounting changed: %d/%d struct, %d/%d value",
			back.StructBytes(), ref.StructBytes(), back.ValueBytes(), ref.ValueBytes())
	}
	// Estimates are bit-identical across the round trip.
	a, b := NewEstimator(ref), NewEstimator(back)
	for _, qs := range []string{
		"//paper", "//paper[year>2000]", "//title[contains(Tree)]",
		"//paper[keywords ftcontains(xml)]", "//author[./book/year]",
		"/dblp//title", "//book[foreword ftcontains(database,systems)]",
	} {
		q := query.MustParse(qs)
		x, y := a.Selectivity(q), b.Selectivity(q)
		if math.Abs(x-y) > 1e-12*math.Max(1, x) {
			t.Fatalf("s(%s): %g before, %g after", qs, x, y)
		}
	}
}

func TestCodecRoundTripCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTree(rng, 300)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := XClusterBuild(ref, BuildOptions{
		StructBudget: ref.StructBytes() / 4,
		ValueBudget:  ref.ValueBytes() / 4,
		Hm:           200, Hl: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewEstimator(s), NewEstimator(back)
	for i := 0; i < 25; i++ {
		q := randomStructQuery(rng, tr)
		if x, y := a.Selectivity(q), b.Selectivity(q); math.Abs(x-y) > 1e-12*math.Max(1, x) {
			t.Fatalf("s(%s): %g before, %g after", q, x, y)
		}
	}
}

func TestCodecSerializedSizeTracksAccounting(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The byte accounting is a model, not the exact file size, but the
	// two must be the same order of magnitude — otherwise the paper's
	// budget semantics would be fiction.
	charged := ref.TotalBytes()
	actual := buf.Len()
	if actual > charged*4 || charged > actual*4 {
		t.Fatalf("charged %d bytes vs serialized %d bytes", charged, actual)
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("NOTASYNOP\n"), good[10:]...),
		"truncated":  good[:len(good)/2],
		"magic only": good[:10],
	}
	for name, data := range cases {
		if _, err := ReadSynopsis(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted corrupt input", name)
		}
	}
}
