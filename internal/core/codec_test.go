package core

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/vsum"
	"xcluster/internal/wire"
)

func TestCodecRoundTrip(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ref.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != ref.NumNodes() || back.NumEdges() != ref.NumEdges() {
		t.Fatalf("shape changed: %d/%d nodes, %d/%d edges",
			back.NumNodes(), ref.NumNodes(), back.NumEdges(), ref.NumEdges())
	}
	if back.StructBytes() != ref.StructBytes() || back.ValueBytes() != ref.ValueBytes() {
		t.Fatalf("size accounting changed: %d/%d struct, %d/%d value",
			back.StructBytes(), ref.StructBytes(), back.ValueBytes(), ref.ValueBytes())
	}
	// Estimates are bit-identical across the round trip.
	a, b := NewEstimator(ref), NewEstimator(back)
	for _, qs := range []string{
		"//paper", "//paper[year>2000]", "//title[contains(Tree)]",
		"//paper[keywords ftcontains(xml)]", "//author[./book/year]",
		"/dblp//title", "//book[foreword ftcontains(database,systems)]",
	} {
		q := query.MustParse(qs)
		x, y := a.Selectivity(q), b.Selectivity(q)
		if math.Abs(x-y) > 1e-12*math.Max(1, x) {
			t.Fatalf("s(%s): %g before, %g after", qs, x, y)
		}
	}
}

func TestCodecRoundTripCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTree(rng, 300)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := XClusterBuild(ref, BuildOptions{
		StructBudget: ref.StructBytes() / 4,
		ValueBudget:  ref.ValueBytes() / 4,
		Hm:           200, Hl: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewEstimator(s), NewEstimator(back)
	for i := 0; i < 25; i++ {
		q := randomStructQuery(rng, tr)
		if x, y := a.Selectivity(q), b.Selectivity(q); math.Abs(x-y) > 1e-12*math.Max(1, x) {
			t.Fatalf("s(%s): %g before, %g after", q, x, y)
		}
	}
}

func TestCodecSerializedSizeTracksAccounting(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The byte accounting is a model, not the exact file size, but the
	// two must be the same order of magnitude — otherwise the paper's
	// budget semantics would be fiction.
	charged := ref.TotalBytes()
	actual := buf.Len()
	if actual > charged*4 || charged > actual*4 {
		t.Fatalf("charged %d bytes vs serialized %d bytes", charged, actual)
	}
}

// writeV1 encodes s in the legacy version-1 format (no fingerprint
// header) — a copy of the pre-versioning encoder, kept to generate and
// regenerate the golden fixture in testdata and to prove the decoder's
// backward compatibility.
func writeV1(w io.Writer, s *Synopsis) error {
	ww := wire.NewWriter(w)
	ww.Bytes(magicV1)
	ww.Uint(uint64(s.dict.Len()))
	for _, term := range s.dict.Terms() {
		ww.String(term)
	}
	ww.Int(int(s.rootID))
	ww.Int(int(s.nextID))
	nodes := s.Nodes()
	ww.Uint(uint64(len(nodes)))
	for _, n := range nodes {
		ww.Int(int(n.ID))
		ww.String(n.Label)
		ww.Uint(uint64(n.VType))
		ww.Float(n.Count)
		ww.String(n.Path)
		ww.Uint(uint64(len(n.Children)))
		targets := make([]int, 0, len(n.Children))
		for c := range n.Children {
			targets = append(targets, int(c))
		}
		sort.Ints(targets)
		for _, c := range targets {
			ww.Int(c)
			ww.Float(n.Children[NodeID(c)])
		}
		if n.VSum != nil {
			ww.Uint(1)
			vsum.Encode(ww, n.VSum)
		} else {
			ww.Uint(0)
		}
	}
	return ww.Flush()
}

const goldenV1 = "testdata/synopsis_v1.bin"

// TestCodecV1Golden decodes the checked-in version-1 fixture: a legacy
// artifact must keep decoding correctly (zero fingerprint, valid graph,
// estimates preserved across a re-encode into the current version).
// Regenerate the fixture with GOLDEN_UPDATE=1 go test -run V1Golden.
func TestCodecV1Golden(t *testing.T) {
	if os.Getenv("GOLDEN_UPDATE") != "" {
		tr := figure1(t)
		ref, err := BuildReference(tr, ReferenceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := XClusterBuild(ref, BuildOptions{StructBudget: ref.StructBytes(), ValueBudget: ref.ValueBytes()})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := writeV1(&buf, s); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV1, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenV1, buf.Len())
	}
	raw, err := os.ReadFile(goldenV1)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	s, err := ReadSynopsis(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 fixture no longer decodes: %v", err)
	}
	if !s.Fingerprint().IsZero() {
		t.Fatalf("v1 artifact decoded with a fingerprint: %+v", s.Fingerprint())
	}
	if s.NumNodes() == 0 {
		t.Fatal("v1 fixture decoded empty")
	}
	// Re-encode into the current version; estimates must survive
	// bit-for-bit.
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewEstimator(s), NewEstimator(back)
	for _, qs := range []string{
		"//paper", "//paper[year>2000]", "//title[contains(Tree)]", "/dblp//title",
	} {
		q := query.MustParse(qs)
		if x, y := a.Selectivity(q), b.Selectivity(q); x != y {
			t.Fatalf("s(%s): %g from v1, %g after v2 round trip", qs, x, y)
		}
	}
}

func TestCodecFingerprintRoundTrip(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Fingerprint().DocHash == 0 {
		t.Fatal("BuildReference left DocHash unset")
	}
	s, err := XClusterBuild(ref, BuildOptions{StructBudget: 256, ValueBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	fp := s.Fingerprint()
	if fp.DocHash != ref.Fingerprint().DocHash {
		t.Fatal("compression lost the doc hash")
	}
	if fp.StructBudget != 256 || fp.ValueBudget != 256 {
		t.Fatalf("budgets not stamped: %+v", fp)
	}
	if fp.BuiltAtUnix == 0 || fp.BuildNanos <= 0 {
		t.Fatalf("build time not stamped: %+v", fp)
	}
	fp.Generation = 7
	s.SetFingerprint(fp)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != fp {
		t.Fatalf("fingerprint changed across round trip:\n got %+v\nwant %+v", back.Fingerprint(), fp)
	}
}

func TestCodecUnknownVersion(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	future := append([]byte(nil), buf.Bytes()...)
	copy(future, "XCLUSTER9\n")
	if _, err := ReadSynopsis(bytes.NewReader(future)); !errors.Is(err, ErrSynopsisVersion) {
		t.Fatalf("future version: got %v, want ErrSynopsisVersion", err)
	}
	garbage := append([]byte(nil), buf.Bytes()...)
	copy(garbage, "NOTASYNOP\n")
	if _, err := ReadSynopsis(bytes.NewReader(garbage)); !errors.Is(err, ErrSynopsisVersion) {
		t.Fatalf("garbage magic: got %v, want ErrSynopsisVersion", err)
	}
}

// TestCodecLyingLengthPrefix corrupts a term-dictionary length prefix
// to claim more bytes than the file holds: the decode must fail with a
// sticky error, not allocate the claimed length or panic.
func TestCodecLyingLengthPrefix(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// The fingerprint header ends with a (normally empty) options
	// string; splice in a huge varint length right after the header so
	// the first dictionary string read sees it.
	var head bytes.Buffer
	hw := wire.NewWriter(&head)
	hw.Uint(1 << 23) // just under maxStringLen: passes the size guard
	_ = hw.Flush()
	corrupt := append([]byte(nil), good[:len(magicV2)]...)
	corrupt = append(corrupt, head.Bytes()...)
	corrupt = append(corrupt, good[len(magicV2):len(good)/2]...)
	if _, err := ReadSynopsis(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("lying length prefix accepted")
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("NOTASYNOP\n"), good[10:]...),
		"truncated":  good[:len(good)/2],
		"magic only": good[:10],
	}
	for name, data := range cases {
		if _, err := ReadSynopsis(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted corrupt input", name)
		}
	}
}
