package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xcluster/internal/vsum"
	"xcluster/internal/xmltree"
)

// ReferenceOptions configure the reference-synopsis construction.
type ReferenceOptions struct {
	// ValuePaths lists the root label paths (e.g.
	// "/dblp/author/paper/year") whose clusters receive detailed value
	// summaries, mirroring the paper's setup where value summaries are
	// built "under specific paths of the underlying XML" provided as
	// input. Nil summarizes every value-bearing path.
	ValuePaths []string
	// Detail tunes the detailed summaries (histogram buckets, PST depth).
	Detail vsum.BuildOptions
}

// BuildReference constructs the reference synopsis of a document: a
// refinement of the lossless count-stable summary in which (1) elements
// in a cluster have the same number of children in every other cluster,
// (2) every cluster has exactly one incoming label path (capturing
// path-to-value correlations), and (3) clusters under the configured
// value paths carry detailed value summaries.
func BuildReference(t *xmltree.Tree, opts ReferenceOptions) (*Synopsis, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("core: BuildReference: %w", err)
	}
	nodes := t.Nodes()

	// Bottom-up count-stable signatures: two elements share a signature
	// iff they agree on label, value type, and the multiset of child
	// signatures. Reverse preorder visits children before parents.
	sigIDs := make(map[string]int)
	sigOf := make([]int, len(nodes))
	var sb strings.Builder
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		counts := make(map[int]int)
		for _, c := range n.Children {
			counts[sigOf[c.ID]]++
		}
		keys := make([]int, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		sb.Reset()
		sb.WriteString(n.Label)
		sb.WriteByte('|')
		sb.WriteByte(byte('0' + uint8(n.Type)))
		for _, k := range keys {
			sb.WriteByte(';')
			sb.WriteString(strconv.Itoa(k))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(counts[k]))
		}
		key := sb.String()
		id, ok := sigIDs[key]
		if !ok {
			id = len(sigIDs)
			sigIDs[key] = id
		}
		sigOf[n.ID] = id
	}

	// Top-down refinement: an element's cluster is determined by its
	// parent's cluster plus its own count-stable signature. Every
	// cluster therefore has exactly one incoming path in the synopsis
	// graph (the reference is a tree), which is what lets it capture
	// path-to-value correlations — e.g. year values under structurally
	// different paper clusters stay in separate clusters with separate
	// summaries.
	type ckey struct {
		parent NodeID // parent cluster (-1 for the root)
		sig    int
	}
	syn := newSynopsis(t.Dict)
	clusterOf := make([]*Node, len(nodes))
	clusters := make(map[ckey]*Node)
	members := make(map[NodeID][]*xmltree.Node)
	for _, n := range nodes { // preorder: parents first
		k := ckey{parent: -1, sig: sigOf[n.ID]}
		var parentPath string
		if n.Parent != nil {
			k.parent = clusterOf[n.Parent.ID].ID
			parentPath = clusterOf[n.Parent.ID].Path
		}
		c, ok := clusters[k]
		if !ok {
			c = syn.addNode(n.Label, n.Type)
			c.Path = parentPath + "/" + n.Label
			clusters[k] = c
		}
		c.Count++
		clusterOf[n.ID] = c
		members[c.ID] = append(members[c.ID], n)
	}
	syn.rootID = clusterOf[t.Root.ID].ID

	// Edges: count(u,v) = (total v-children of u's extent) / |u|.
	totals := make(map[NodeID]map[NodeID]float64)
	for _, n := range nodes {
		u := clusterOf[n.ID]
		for _, c := range n.Children {
			v := clusterOf[c.ID]
			m := totals[u.ID]
			if m == nil {
				m = make(map[NodeID]float64)
				totals[u.ID] = m
			}
			m[v.ID]++
		}
	}
	for uid, m := range totals {
		u := syn.nodes[uid]
		for vid, total := range m {
			syn.setEdge(u, syn.nodes[vid], total/u.Count)
		}
	}

	// Detailed value summaries under the configured paths.
	var wanted map[string]bool
	if opts.ValuePaths != nil {
		wanted = make(map[string]bool, len(opts.ValuePaths))
		for _, p := range opts.ValuePaths {
			wanted[p] = true
		}
	}
	for id, ms := range members {
		c := syn.nodes[id]
		if c.VType == xmltree.TypeNull {
			continue
		}
		if wanted != nil && !wanted[c.Path] {
			continue
		}
		s, err := vsum.FromNodes(ms, opts.Detail)
		if err != nil {
			return nil, fmt.Errorf("core: BuildReference: cluster %s: %w", c.Path, err)
		}
		c.VSum = s
	}
	syn.fp = Fingerprint{DocHash: DocHash(t), BuildOptions: opts.render()}
	return syn, nil
}

// render produces the canonical one-line option summary stored in the
// fingerprint (empty when everything is default).
func (o ReferenceOptions) render() string {
	var parts []string
	if len(o.ValuePaths) > 0 {
		parts = append(parts, fmt.Sprintf("valuepaths=%d", len(o.ValuePaths)))
	}
	if o.Detail.Numeric != 0 {
		parts = append(parts, fmt.Sprintf("numeric=%d", o.Detail.Numeric))
	}
	if o.Detail.PSTDepth != 0 {
		parts = append(parts, fmt.Sprintf("pstdepth=%d", o.Detail.PSTDepth))
	}
	if o.Detail.HistBuckets != 0 {
		parts = append(parts, fmt.Sprintf("histbuckets=%d", o.Detail.HistBuckets))
	}
	if o.Detail.MaxSummaryBytes != 0 {
		parts = append(parts, fmt.Sprintf("maxsummary=%d", o.Detail.MaxSummaryBytes))
	}
	return strings.Join(parts, " ")
}

// BuildTagSynopsis constructs the coarsest structural summary: elements
// clustered solely by (label, value type). This is the paper's
// 0KB-structural-budget baseline. Value summaries are built detailed
// under the configured paths and then belong to tag-level clusters.
func BuildTagSynopsis(t *xmltree.Tree, opts ReferenceOptions) (*Synopsis, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("core: BuildTagSynopsis: %w", err)
	}
	type ckey struct {
		label string
		vt    xmltree.ValueType
	}
	syn := newSynopsis(t.Dict)
	clusters := make(map[ckey]*Node)
	clusterOf := make([]*Node, t.Len())
	members := make(map[NodeID][]*xmltree.Node)
	var wanted map[string]bool
	if opts.ValuePaths != nil {
		wanted = make(map[string]bool, len(opts.ValuePaths))
		for _, p := range opts.ValuePaths {
			wanted[p] = true
		}
	}
	summarize := make(map[NodeID]bool)
	for _, n := range t.Nodes() {
		k := ckey{label: n.Label, vt: n.Type}
		c, ok := clusters[k]
		if !ok {
			c = syn.addNode(n.Label, n.Type)
			c.Path = "~/" + n.Label
			clusters[k] = c
		}
		c.Count++
		clusterOf[n.ID] = c
		if n.Type != xmltree.TypeNull && (wanted == nil || wanted[n.Path()]) {
			members[c.ID] = append(members[c.ID], n)
			summarize[c.ID] = true
		}
	}
	syn.rootID = clusterOf[t.Root.ID].ID
	totals := make(map[NodeID]map[NodeID]float64)
	for _, n := range t.Nodes() {
		u := clusterOf[n.ID]
		for _, c := range n.Children {
			v := clusterOf[c.ID]
			m := totals[u.ID]
			if m == nil {
				m = make(map[NodeID]float64)
				totals[u.ID] = m
			}
			m[v.ID]++
		}
	}
	for uid, m := range totals {
		u := syn.nodes[uid]
		for vid, total := range m {
			syn.setEdge(u, syn.nodes[vid], total/u.Count)
		}
	}
	for id := range summarize {
		c := syn.nodes[id]
		s, err := vsum.FromNodes(members[id], opts.Detail)
		if err != nil {
			return nil, fmt.Errorf("core: BuildTagSynopsis: cluster %s: %w", c.Label, err)
		}
		c.VSum = s
	}
	syn.fp = Fingerprint{DocHash: DocHash(t), BuildOptions: opts.render()}
	return syn, nil
}
