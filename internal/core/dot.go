package core

import (
	"fmt"
	"io"
)

// WriteDOT renders the synopsis as a Graphviz digraph for visual
// inspection: one box per structure-value cluster (label, extent size,
// value-summary type and size) and one edge per child relationship
// annotated with its average count.
func (s *Synopsis) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph xcluster {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"Helvetica\", fontsize=10];")
	for _, n := range s.Nodes() {
		label := fmt.Sprintf("%s\\n|%g|", n.Label, n.Count)
		attrs := ""
		if n.VSum != nil {
			label += fmt.Sprintf("\\n%s %dB", n.VType, n.VSum.SizeBytes())
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		if n.ID == s.rootID {
			attrs = ", style=filled, fillcolor=lightblue"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"%s];\n", n.ID, label, attrs); err != nil {
			return err
		}
	}
	for _, n := range s.Nodes() {
		for _, c := range sortedChildIDs(n) {
			avg := n.Children[c]
			if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%.2g\", fontsize=8];\n", n.ID, c, avg); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// sortedChildIDs returns n's child ids in ascending order for
// deterministic output.
func sortedChildIDs(n *Node) []NodeID {
	out := make([]NodeID, 0, len(n.Children))
	for c := range n.Children {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
