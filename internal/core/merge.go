package core

import (
	"fmt"
	"sort"
	"strings"
)

// Compatible reports whether u and v may be merged: identical labels and
// value types (the type-respecting constraint), and matching value-summary
// presence (merging a summarized with an unsummarized cluster would
// silently discard distribution information).
func Compatible(u, v *Node) bool {
	return u.ID != v.ID &&
		u.Label == v.Label &&
		u.VType == v.VType &&
		u.HasValues() == v.HasValues()
}

// mergedEdges computes the child-edge centroid of the node w that would
// result from merging u and v: for every child target (with u and v
// remapped to the merged node, represented by the placeholder id), the
// average number of children per element of w. The second return value is
// the parent set of w (u, v remapped likewise).
func mergedEdges(u, v *Node, placeholder NodeID) (children map[NodeID]float64, parents map[NodeID]struct{}) {
	children = mergedChildren(u, v, placeholder)
	remap := func(id NodeID) NodeID {
		if id == u.ID || id == v.ID {
			return placeholder
		}
		return id
	}
	parents = make(map[NodeID]struct{}, len(u.Parents)+len(v.Parents))
	for _, x := range []*Node{u, v} {
		for p := range x.Parents {
			parents[remap(p)] = struct{}{}
		}
	}
	return children, parents
}

// mergedChildren is the child-centroid half of mergedEdges, for callers
// that do not need the parent set (Δ evaluations run it per candidate).
func mergedChildren(u, v *Node, placeholder NodeID) map[NodeID]float64 {
	total := u.Count + v.Count
	children := make(map[NodeID]float64, len(u.Children)+len(v.Children))
	remap := func(id NodeID) NodeID {
		if id == u.ID || id == v.ID {
			return placeholder
		}
		return id
	}
	for _, x := range []*Node{u, v} {
		// Sorted source order: accumulation into a remapped target can
		// receive several terms, and float addition order must be
		// reproducible for deterministic builds.
		srcs := make([]int, 0, len(x.Children))
		for c := range x.Children {
			srcs = append(srcs, int(c))
		}
		sort.Ints(srcs)
		for _, ci := range srcs {
			c := NodeID(ci)
			children[remap(c)] += x.Count * x.Children[c] / total
		}
	}
	return children
}

// Merge applies merge(S, u, v): it replaces clusters u and v with a new
// cluster w whose extent is the union, with the weighted structural
// centroid, summed parent edge counts, and fused value summary of the
// paper's Section 4.1. It returns the new node. The synopsis is modified
// in place.
func (s *Synopsis) Merge(uid, vid NodeID) (*Node, error) {
	u, v := s.nodes[uid], s.nodes[vid]
	if u == nil || v == nil {
		return nil, fmt.Errorf("core: Merge(%d,%d): node gone", uid, vid)
	}
	if !Compatible(u, v) {
		return nil, fmt.Errorf("core: Merge(%d,%d): incompatible (%s/%v vs %s/%v)",
			uid, vid, u.Label, u.VType, v.Label, v.VType)
	}
	w := s.addNode(u.Label, u.VType)
	w.Count = u.Count + v.Count
	w.Path = u.Path
	if v.Path != u.Path && !strings.HasSuffix(u.Path, ",…") {
		// The cluster now spans multiple incoming paths; mark it so
		// Explain output and debugging dumps don't mislead.
		w.Path = u.Path + ",…"
	}
	children, parents := mergedEdges(u, v, w.ID)

	// Install child edges of w.
	for c, avg := range children {
		target := s.nodes[c]
		if c == w.ID {
			target = w
		}
		s.setEdge(w, target, avg)
	}
	// Re-point external parents: count(p, w) = count(p, u) + count(p, v).
	for p := range parents {
		if p == w.ID {
			continue // self-loop already installed above
		}
		parent := s.nodes[p]
		sum := parent.Children[uid] + parent.Children[vid]
		s.dropEdge(parent, uid)
		s.dropEdge(parent, vid)
		s.setEdge(parent, w, sum)
	}
	// Detach u and v from their children's parent sets and release their
	// outgoing edges.
	for _, x := range []*Node{u, v} {
		for c := range x.Children {
			if child := s.nodes[c]; child != nil {
				delete(child.Parents, x.ID)
			}
		}
		s.edges -= len(x.Children)
	}
	// Fuse value summaries.
	if u.VSum != nil {
		w.VSum = u.VSum.Fuse(v.VSum)
	}
	if s.rootID == uid || s.rootID == vid {
		s.rootID = w.ID
	}
	delete(s.nodes, uid)
	delete(s.nodes, vid)
	return w, nil
}
