package core

import (
	"fmt"
	"sort"
	"strings"

	"xcluster/internal/query"
)

// Embedding is one mapping of a query's variables onto synopsis nodes
// with its estimated contribution to the total selectivity — the unit of
// Section 5's estimation framework, exposed for debugging and optimizer
// introspection.
type Embedding struct {
	// Nodes maps each query variable (preorder index over the query
	// tree) to the synopsis node it is bound to.
	Nodes []NodeID
	// Tuples is the embedding's estimated binding-tuple count.
	Tuples float64
}

// Explain enumerates the query's embeddings and their contributions.
// The sum of the contributions equals Selectivity(q). Embeddings are
// returned in decreasing contribution order, capped at limit (<= 0: all).
//
// Explain enumerates embeddings explicitly (exponential in the worst
// case, unlike the memoized Selectivity), so it is intended for query
// debugging, not the hot path.
func (e *Estimator) Explain(q *query.Query, limit int) []Embedding {
	vars := countVars(q)
	var out []Embedding
	assignment := make([]NodeID, vars)
	// Enumerate variable bindings depth-first over the preorder list of
	// variables: each embedding's contribution is the product of
	// (reach count × predicate selectivity) over its variables, and the
	// products sum to exactly what the memoized Selectivity computes.
	type varInfo struct {
		node   *query.Node
		parent int // preorder index of parent variable, -1 for roots
	}
	var infos []varInfo
	var collect func(v *query.Node, parent int)
	collect = func(v *query.Node, parent int) {
		idx := len(infos)
		infos = append(infos, varInfo{node: v, parent: parent})
		for _, c := range v.Children {
			collect(c, idx)
		}
	}
	for _, r := range q.Roots {
		collect(r, -1)
	}

	var rec func(i int, contrib float64)
	rec = func(i int, contrib float64) {
		if i == len(infos) {
			out = append(out, Embedding{
				Nodes:  append([]NodeID(nil), assignment...),
				Tuples: contrib,
			})
			return
		}
		info := infos[i]
		from := NodeID(-1)
		if info.parent >= 0 {
			from = assignment[info.parent]
		}
		frontier := e.reach(from, info.node.Steps)
		for _, fw := range frontier {
			sel := e.predSel(e.s.nodes[fw.id], info.node.Pred)
			if sel == 0 || fw.w == 0 {
				continue
			}
			assignment[i] = fw.id
			rec(i+1, contrib*fw.w*sel)
		}
	}
	rec(0, 1)

	sort.Slice(out, func(i, j int) bool { return out[i].Tuples > out[j].Tuples })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// countVars returns the number of query variables.
func countVars(q *query.Query) int {
	n := 0
	var walk func(*query.Node)
	walk = func(v *query.Node) {
		n++
		for _, c := range v.Children {
			walk(c)
		}
	}
	for _, r := range q.Roots {
		walk(r)
	}
	return n
}

// FormatEmbedding renders an embedding against a synopsis for human
// consumption, e.g. "paper(/dblp/author/paper) year(...) -> 12.5".
func (s *Synopsis) FormatEmbedding(em Embedding) string {
	var sb strings.Builder
	for i, id := range em.Nodes {
		if i > 0 {
			sb.WriteByte(' ')
		}
		n := s.nodes[id]
		if n == nil {
			sb.WriteString("?")
			continue
		}
		fmt.Fprintf(&sb, "%s(%s)", n.Label, n.Path)
	}
	fmt.Fprintf(&sb, " -> %.2f", em.Tuples)
	return sb.String()
}
