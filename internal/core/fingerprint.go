package core

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"xcluster/internal/xmltree"
)

// Fingerprint is a synopsis's build identity: which document it
// summarizes (a structural hash), under which budgets and build
// options, and in which rebuild generation. It is stamped by
// BuildReference (doc hash) and XClusterBuildContext (budgets, build
// time), carried through Clone, serialized in the versioned codec
// header, and reported by the serving layer so operators can tell at a
// glance whether the resident synopsis matches the resident document.
//
// The zero Fingerprint marks a synopsis of unknown provenance (built
// before fingerprinting, or decoded from a version-1 file).
type Fingerprint struct {
	// DocHash is an FNV-64a hash of the source document's structure and
	// values (labels, types, numeric/string values, term vectors, in
	// preorder). Two documents with equal hashes are, for synopsis
	// purposes, the same document.
	DocHash uint64 `json:"doc_hash,omitempty"`
	// StructBudget and ValueBudget are the byte budgets the synopsis
	// was compressed under (0: uncompressed reference).
	StructBudget int `json:"struct_budget,omitempty"`
	ValueBudget  int `json:"value_budget,omitempty"`
	// BuildOptions is a canonical one-line rendering of the non-default
	// build options, for operator display only.
	BuildOptions string `json:"build_options,omitempty"`
	// Generation counts rebuilds of this artifact: 0 for an initial
	// build, incremented by the serving layer each time it swaps in a
	// rebuilt synopsis.
	Generation uint64 `json:"generation"`
	// BuiltAtUnix is the build completion time (Unix seconds; 0 when
	// unknown).
	BuiltAtUnix int64 `json:"built_at_unix,omitempty"`
	// BuildNanos is the wall time of the build (reference construction
	// excluded for XClusterBuildContext; 0 when unknown).
	BuildNanos int64 `json:"build_nanos,omitempty"`
	// Plan is the resolved BudgetPlan the compression ran under:
	// StructBudget/ValueBudget above mirror its group totals, and the
	// plan adds the component split, provenance (static | auto |
	// workload) and the WorkloadProfile fingerprint of an adaptive
	// plan. It is stamped by XClusterBuildContext and serialized in
	// version-3 files; a synopsis restored from a v1/v2 file has a
	// zero Plan (unknown provenance).
	Plan BudgetPlan `json:"plan,omitzero"`
}

// IsZero reports whether the fingerprint carries no provenance (legacy
// artifact).
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders the fingerprint on one line for logs and -version
// style output.
func (f Fingerprint) String() string {
	if f.IsZero() {
		return "unfingerprinted (pre-v2 artifact)"
	}
	s := fmt.Sprintf("doc=%016x gen=%d bstr=%d bval=%d", f.DocHash, f.Generation, f.StructBudget, f.ValueBudget)
	if p := f.Plan; !p.IsZero() && p.Provenance != ProvenanceStatic {
		s += " plan=" + string(p.Provenance)
		if p.WorkloadFingerprint != "" {
			s += " workload=" + p.WorkloadFingerprint
		}
	}
	if f.BuiltAtUnix != 0 {
		s += " built=" + time.Unix(f.BuiltAtUnix, 0).UTC().Format(time.RFC3339)
	}
	if f.BuildNanos != 0 {
		s += " build_time=" + time.Duration(f.BuildNanos).String()
	}
	if f.BuildOptions != "" {
		s += " opts=" + f.BuildOptions
	}
	return s
}

// Fingerprint returns the synopsis's build identity (zero for legacy
// artifacts).
func (s *Synopsis) Fingerprint() Fingerprint { return s.fp }

// SetFingerprint replaces the synopsis's build identity. Like all
// synopsis mutation it must happen before the synopsis is shared.
func (s *Synopsis) SetFingerprint(f Fingerprint) { s.fp = f }

// DocHash computes the Fingerprint.DocHash of a document: FNV-64a over
// a canonical preorder walk of labels, value types, and values. The
// walk visits every element once, so hashing costs one linear pass.
func DocHash(t *xmltree.Tree) uint64 {
	h := fnv.New64a()
	var num [20]byte
	writeInt := func(v int) {
		b := strconv.AppendInt(num[:0], int64(v), 10)
		h.Write(b)
		h.Write([]byte{'|'})
	}
	for _, n := range t.Nodes() {
		h.Write([]byte(n.Label))
		h.Write([]byte{0, byte(n.Type)})
		switch n.Type {
		case xmltree.TypeNumeric:
			writeInt(n.Num)
		case xmltree.TypeString:
			h.Write([]byte(n.Str))
			h.Write([]byte{0})
		case xmltree.TypeText:
			for _, term := range n.Terms {
				writeInt(term)
			}
		}
		writeInt(len(n.Children))
	}
	return h.Sum64()
}
