package rle

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	b := FromSorted(nil)
	if b.Card() != 0 || b.Runs() != 0 || b.Contains(0) {
		t.Fatalf("empty set misbehaves: card=%d runs=%d", b.Card(), b.Runs())
	}
}

func TestRunCoalescing(t *testing.T) {
	b := FromSorted([]int{1, 2, 3, 7, 8, 20})
	if b.Runs() != 3 {
		t.Fatalf("Runs = %d, want 3", b.Runs())
	}
	if b.Card() != 6 {
		t.Fatalf("Card = %d, want 6", b.Card())
	}
	for _, id := range []int{1, 2, 3, 7, 8, 20} {
		if !b.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	for _, id := range []int{0, 4, 6, 9, 19, 21} {
		if b.Contains(id) {
			t.Errorf("spurious %d", id)
		}
	}
}

func TestIDsRoundTrip(t *testing.T) {
	in := []int{0, 5, 6, 7, 100}
	b := FromSorted(in)
	out := b.IDs()
	if len(out) != len(in) {
		t.Fatalf("IDs = %v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("IDs[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestFromUnsortedDedup(t *testing.T) {
	b := FromUnsorted([]int{5, 1, 5, 3, 1})
	if b.Card() != 3 {
		t.Fatalf("Card = %d, want 3", b.Card())
	}
	want := []int{1, 3, 5}
	for i, id := range b.IDs() {
		if id != want[i] {
			t.Fatalf("IDs = %v", b.IDs())
		}
	}
}

func TestOrAddRemove(t *testing.T) {
	a := FromSorted([]int{1, 2, 10})
	b := FromSorted([]int{2, 3})
	u := a.Or(b)
	if u.Card() != 4 || !u.Contains(3) || !u.Contains(10) {
		t.Fatalf("Or = %v", u.IDs())
	}
	// Originals untouched.
	if a.Card() != 3 || b.Card() != 2 {
		t.Fatal("Or mutated operands")
	}
	w := a.Add(0, 11)
	if w.Card() != 5 || !w.Contains(0) || !w.Contains(11) {
		t.Fatalf("Add = %v", w.IDs())
	}
	r := w.Remove(0, 10)
	if r.Card() != 3 || r.Contains(0) || r.Contains(10) {
		t.Fatalf("Remove = %v", r.IDs())
	}
}

// Property: membership after FromUnsorted matches a map-based set, and
// runs never exceed cardinality.
func TestQuickMembership(t *testing.T) {
	f := func(raw []uint16) bool {
		ids := make([]int, len(raw))
		set := make(map[int]bool)
		for i, v := range raw {
			ids[i] = int(v)
			set[int(v)] = true
		}
		b := FromUnsorted(ids)
		if b.Card() != len(set) || b.Runs() > b.Card() {
			return false
		}
		for id := range set {
			if !b.Contains(id) {
				return false
			}
		}
		// Probe a few non-members.
		for i := 0; i < 10; i++ {
			probe := rand.Intn(1 << 16)
			if b.Contains(probe) != set[probe] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or is the set union.
func TestQuickOr(t *testing.T) {
	f := func(x, y []uint8) bool {
		xs := make([]int, len(x))
		for i, v := range x {
			xs[i] = int(v)
		}
		ys := make([]int, len(y))
		for i, v := range y {
			ys[i] = int(v)
		}
		u := FromUnsorted(xs).Or(FromUnsorted(ys))
		want := make(map[int]bool)
		for _, v := range xs {
			want[v] = true
		}
		for _, v := range ys {
			want[v] = true
		}
		if u.Card() != len(want) {
			return false
		}
		ids := u.IDs()
		if !sort.IntsAreSorted(ids) {
			return false
		}
		for _, id := range ids {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSorted accepted unsorted input")
		}
	}()
	FromSorted([]int{3, 1})
}
