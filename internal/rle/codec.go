package rle

import "xcluster/internal/wire"

// Encode writes the bitset as a run count followed by delta-encoded
// (gap, length) pairs.
func (b *Bitset) Encode(w *wire.Writer) {
	w.Uint(uint64(len(b.runs)))
	prev := 0
	for _, r := range b.runs {
		w.Uint(uint64(r.Start - prev))
		w.Uint(uint64(r.Len))
		prev = r.Start + r.Len
	}
}

// Decode reads a bitset written by Encode.
func Decode(r *wire.Reader) *Bitset {
	n := int(r.Uint())
	b := &Bitset{}
	prev := 0
	for i := 0; i < n && r.Err() == nil; i++ {
		start := prev + int(r.Uint())
		length := int(r.Uint())
		b.runs = append(b.runs, run{Start: start, Len: length})
		b.card += length
		prev = start + length
	}
	return b
}
