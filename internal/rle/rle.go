// Package rle implements a run-length-compressed bitset over a dense
// integer domain. It is the lossless representation behind the uniform
// bucket of end-biased term histograms: the binary version of a term
// vector (1 where a term occurs, 0 otherwise) compressed as runs of set
// bits.
package rle

import (
	"fmt"
	"sort"
)

// run is a maximal interval [Start, Start+Len) of set bits.
type run struct {
	Start, Len int
}

// Bitset is an immutable run-length-encoded set of non-negative integers.
// The zero value is the empty set.
type Bitset struct {
	runs []run
	card int
}

// FromSorted builds a Bitset from a sorted slice of distinct non-negative
// ids. It panics if ids are unsorted or duplicated (caller bug).
func FromSorted(ids []int) *Bitset {
	b := &Bitset{}
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			panic(fmt.Sprintf("rle: FromSorted: unsorted input at %d", i))
		}
		if n := len(b.runs); n > 0 && b.runs[n-1].Start+b.runs[n-1].Len == id {
			b.runs[n-1].Len++
		} else {
			b.runs = append(b.runs, run{Start: id, Len: 1})
		}
	}
	b.card = len(ids)
	return b
}

// FromUnsorted builds a Bitset from arbitrary ids, deduplicating.
func FromUnsorted(ids []int) *Bitset {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	dedup := sorted[:0]
	for i, id := range sorted {
		if i == 0 || sorted[i-1] != id {
			dedup = append(dedup, id)
		}
	}
	return FromSorted(dedup)
}

// Contains reports whether id is in the set.
func (b *Bitset) Contains(id int) bool {
	i := sort.Search(len(b.runs), func(i int) bool {
		return b.runs[i].Start+b.runs[i].Len > id
	})
	return i < len(b.runs) && b.runs[i].Start <= id
}

// Card returns the number of set bits.
func (b *Bitset) Card() int { return b.card }

// Runs returns the number of runs (the unit of the size accounting).
func (b *Bitset) Runs() int { return len(b.runs) }

// Or returns the union of b and o.
func (b *Bitset) Or(o *Bitset) *Bitset {
	ids := make([]int, 0, b.card+o.card)
	ids = append(ids, b.IDs()...)
	ids = append(ids, o.IDs()...)
	return FromUnsorted(ids)
}

// Add returns a copy of b with the given ids added.
func (b *Bitset) Add(ids ...int) *Bitset {
	all := append(b.IDs(), ids...)
	return FromUnsorted(all)
}

// Remove returns a copy of b without the given ids.
func (b *Bitset) Remove(ids ...int) *Bitset {
	drop := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		drop[id] = struct{}{}
	}
	kept := make([]int, 0, b.card)
	for _, id := range b.IDs() {
		if _, gone := drop[id]; !gone {
			kept = append(kept, id)
		}
	}
	return FromSorted(kept)
}

// IDs materializes the set as a sorted slice.
func (b *Bitset) IDs() []int {
	out := make([]int, 0, b.card)
	for _, r := range b.runs {
		for i := 0; i < r.Len; i++ {
			out = append(out, r.Start+i)
		}
	}
	return out
}
