package termhist

import (
	"sort"

	"xcluster/internal/rle"
	"xcluster/internal/wire"
)

// Encode writes the histogram: element count, indexed terms (sorted by
// id), the uniform-bucket bitmap, and its mass.
func (h *Hist) Encode(w *wire.Writer) {
	w.Float(h.n)
	w.Uint(uint64(len(h.top)))
	ids := make([]int, 0, len(h.top))
	for t := range h.top {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	prev := 0
	for _, t := range ids {
		w.Uint(uint64(t - prev))
		w.Float(h.top[t])
		prev = t
	}
	h.bitmap.Encode(w)
	w.Float(h.mass)
}

// Decode reads a histogram written by Encode.
func Decode(r *wire.Reader) *Hist {
	h := &Hist{n: r.Float(), top: make(map[int]float64)}
	n := int(r.Uint())
	prev := 0
	for i := 0; i < n && r.Err() == nil; i++ {
		t := prev + int(r.Uint())
		h.top[t] = r.Float()
		prev = t
	}
	h.bitmap = rle.Decode(r)
	h.mass = r.Float()
	return h
}
