package termhist

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBuildExactFrequencies(t *testing.T) {
	// Vectors over terms 0..3: term 0 in 3/4, term 1 in 2/4, term 2 in
	// 1/4, term 3 absent.
	vecs := [][]int{{0, 1}, {0, 1, 2}, {0}, {}}
	h := Build(vecs)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %g", h.Count())
	}
	if !approx(h.Frequency(0), 0.75) || !approx(h.Frequency(1), 0.5) || !approx(h.Frequency(2), 0.25) {
		t.Fatalf("frequencies: %g %g %g", h.Frequency(0), h.Frequency(1), h.Frequency(2))
	}
	if h.Frequency(3) != 0 {
		t.Fatalf("absent term has frequency %g", h.Frequency(3))
	}
	if h.BucketTerms() != 0 {
		t.Fatal("detailed build has a non-empty bucket")
	}
}

func TestSelectivityConjunction(t *testing.T) {
	vecs := [][]int{{0, 1}, {0, 1}, {0}, {1}}
	h := Build(vecs)
	// Term independence: sel(0,1) = 0.75 * 0.75.
	if got := h.Selectivity([]int{0, 1}); !approx(got, 0.5625) {
		t.Fatalf("sel(0,1) = %g", got)
	}
	if got := h.Selectivity([]int{0, 99}); got != 0 {
		t.Fatalf("sel with absent term = %g", got)
	}
	if got := h.Selectivity(nil); got != 1 {
		t.Fatalf("empty conjunction = %g", got)
	}
}

func TestCompressDemotesLowestFrequencies(t *testing.T) {
	// Frequencies: t0=1.0, t1=0.75, t2=0.5, t3=0.25.
	vecs := [][]int{{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {0}}
	h := Build(vecs)
	c, n := h.Compress(2)
	if n != 2 {
		t.Fatalf("demoted %d, want 2", n)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.IndexedTerms() != 2 {
		t.Fatalf("indexed = %d", c.IndexedTerms())
	}
	// t0, t1 stay exact.
	if !approx(c.Frequency(0), 1.0) || !approx(c.Frequency(1), 0.75) {
		t.Fatalf("top frequencies disturbed: %g %g", c.Frequency(0), c.Frequency(1))
	}
	// t2, t3 share the bucket average (0.5+0.25)/2 = 0.375.
	if !approx(c.Frequency(2), 0.375) || !approx(c.Frequency(3), 0.375) {
		t.Fatalf("bucket frequencies: %g %g", c.Frequency(2), c.Frequency(3))
	}
	// Absent terms remain exactly zero — the end-biased property.
	if c.Frequency(42) != 0 {
		t.Fatal("absent term leaked frequency")
	}
	// Original is untouched.
	if h.IndexedTerms() != 4 {
		t.Fatal("Compress mutated the receiver")
	}
}

func TestCompressAll(t *testing.T) {
	vecs := [][]int{{0, 1}, {1}}
	h := Build(vecs)
	c, n := h.Compress(100)
	if n != 2 || c.IndexedTerms() != 0 {
		t.Fatalf("demoted %d, indexed %d", n, c.IndexedTerms())
	}
	// All mass in the bucket: avg = (0.5 + 1.0)/2.
	if !approx(c.BucketAvg(), 0.75) {
		t.Fatalf("BucketAvg = %g", c.BucketAvg())
	}
	if _, n := c.Compress(1); n != 0 {
		t.Fatal("compressed an empty index")
	}
}

func TestMergeMatchesUnionBuild(t *testing.T) {
	a := Build([][]int{{0, 1}, {0}})
	b := Build([][]int{{1, 2}, {2}, {2, 3}})
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	u := Build([][]int{{0, 1}, {0}, {1, 2}, {2}, {2, 3}})
	if m.Count() != u.Count() {
		t.Fatalf("count %g vs %g", m.Count(), u.Count())
	}
	for term := 0; term < 5; term++ {
		if !approx(m.Frequency(term), u.Frequency(term)) {
			t.Fatalf("term %d: merged %g, union %g", term, m.Frequency(term), u.Frequency(term))
		}
	}
}

func TestMergeWithCompressedInputs(t *testing.T) {
	a := Build([][]int{{0, 1, 2}, {0}})
	ac, _ := a.Compress(2) // demote terms 1,2 into a's bucket
	b := Build([][]int{{0, 3}})
	m := Merge(ac, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %g", m.Count())
	}
	// Term 0 is indexed in both: exact weighted combination
	// (2*1.0 + 1*1.0)/3 = 1.0.
	if !approx(m.Frequency(0), 1.0) {
		t.Fatalf("f(0) = %g", m.Frequency(0))
	}
	// Term 3 indexed only in b: (2*0 + 1*1.0)/3.
	if !approx(m.Frequency(3), 1.0/3) {
		t.Fatalf("f(3) = %g", m.Frequency(3))
	}
	// Terms 1,2 live in the merged bucket with weighted average mass.
	if m.Frequency(1) <= 0 || m.Frequency(2) <= 0 {
		t.Fatalf("bucket terms lost: %g %g", m.Frequency(1), m.Frequency(2))
	}
	// Total mass conservation: sum of all frequencies × n equals the
	// total number of (element, term) incidences, approximately.
	total := 0.0
	for term := 0; term < 5; term++ {
		total += m.Frequency(term) * m.Count()
	}
	if math.Abs(total-6) > 1e-6 { // incidences: {0,1,2},{0},{0,3} = 6
		t.Fatalf("total incidence mass = %g, want 6", total)
	}
}

func TestMergeNil(t *testing.T) {
	a := Build([][]int{{0}})
	if m := Merge(a, nil); m.Count() != 1 || !approx(m.Frequency(0), 1) {
		t.Fatal("Merge(a, nil) not a clone")
	}
	if m := Merge(nil, a); m.Count() != 1 {
		t.Fatal("Merge(nil, a) not a clone")
	}
}

func TestTopTermsOrder(t *testing.T) {
	vecs := [][]int{{5, 9}, {5}, {5, 9, 2}, {5}}
	h := Build(vecs)
	top := h.TopTerms()
	if len(top) != 3 || top[0] != 5 || top[1] != 9 || top[2] != 2 {
		t.Fatalf("TopTerms = %v", top)
	}
}

func TestSizeAccountingShrinks(t *testing.T) {
	// 64 scattered terms: compressing should reduce the byte charge once
	// enough terms land in (contiguous runs of) the bucket.
	vecs := make([][]int, 8)
	for i := range vecs {
		for t := 0; t < 64; t++ {
			if (t+i)%3 == 0 {
				vecs[i] = append(vecs[i], t)
			}
		}
	}
	h := Build(vecs)
	before := h.SizeBytes()
	c, _ := h.Compress(h.IndexedTerms())
	if c.SizeBytes() >= before {
		t.Fatalf("full compression did not shrink: %d -> %d", before, c.SizeBytes())
	}
}

func TestRandomizedMergeCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		mk := func(n int) [][]int {
			vecs := make([][]int, n)
			for i := range vecs {
				for term := 0; term < 30; term++ {
					if rng.Intn(4) == 0 {
						vecs[i] = append(vecs[i], term)
					}
				}
			}
			return vecs
		}
		va, vb := mk(rng.Intn(10)+1), mk(rng.Intn(10)+1)
		m := Merge(Build(va), Build(vb))
		u := Build(append(append([][]int{}, va...), vb...))
		for term := 0; term < 30; term++ {
			if !approx(m.Frequency(term), u.Frequency(term)) {
				t.Fatalf("iter %d term %d: %g vs %g", iter, term, m.Frequency(term), u.Frequency(term))
			}
		}
	}
}

func TestEmptyBuild(t *testing.T) {
	h := Build(nil)
	if h.Count() != 0 || h.Frequency(0) != 0 {
		t.Fatal("empty build misbehaves")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBucketSample(t *testing.T) {
	h := Build([][]int{{0, 1, 2, 3, 4}})
	c, _ := h.Compress(5)
	sample := c.BucketSample(3)
	if len(sample) != 3 {
		t.Fatalf("BucketSample = %v", sample)
	}
	for _, id := range sample {
		if !c.bitmap.Contains(id) {
			t.Fatalf("sampled id %d not in bucket", id)
		}
	}
	if got := c.BucketSample(100); len(got) != 5 {
		t.Fatalf("oversized sample = %v", got)
	}
}
