// Package termhist implements end-biased term histograms, the paper's
// novel summary for TEXT content. A TEXT XCluster node is summarized by
// the centroid of its Boolean term vectors: w[t] is the fraction of
// elements whose free text contains term t. The end-biased histogram
// compresses that centroid as
//
//   - the top-few term frequencies, retained exactly; and
//   - a uniform bucket holding a lossless run-length-compressed encoding
//     of the binary version of the remaining vector entries (1 where
//     w[t] > 0), plus a single average frequency for those terms.
//
// A term lookup first consults the exact part; failing that, it returns
// the uniform bucket's average if the term's bit is set and 0 otherwise.
// Keeping the 0/1 part lossless avoids the failure mode of conventional
// range-bucket histograms on point (term-match) queries: zero-valued
// entries (non-existent terms) are never conflated with present ones.
package termhist

import (
	"fmt"
	"math"
	"sort"

	"xcluster/internal/rle"
)

// TermBytes is the storage charged per exactly-indexed term (term id plus
// frequency).
const TermBytes = 6

// RunBytes is the storage charged per run of the RLE-compressed uniform
// bucket.
const RunBytes = 4

// Hist is an end-biased term histogram. The zero value is unusable; use
// Build or Merge.
type Hist struct {
	n      float64         // number of elements summarized
	top    map[int]float64 // exact fractional frequencies
	bitmap *rle.Bitset     // uniform bucket membership (term ids)
	mass   float64         // sum of fractional frequencies in the bucket
}

// Build constructs a detailed histogram (everything exact, empty uniform
// bucket) from the term-id vectors of a collection of TEXT elements.
func Build(vectors [][]int) *Hist {
	h := &Hist{n: float64(len(vectors)), top: make(map[int]float64), bitmap: rle.FromSorted(nil)}
	if len(vectors) == 0 {
		return h
	}
	for _, vec := range vectors {
		for _, t := range vec {
			h.top[t]++
		}
	}
	for t := range h.top {
		h.top[t] /= h.n
	}
	return h
}

// Count returns the number of elements summarized.
func (h *Hist) Count() float64 { return h.n }

// IndexedTerms returns the number of exactly-retained term frequencies.
func (h *Hist) IndexedTerms() int { return len(h.top) }

// BucketTerms returns the number of terms in the uniform bucket.
func (h *Hist) BucketTerms() int { return h.bitmap.Card() }

// BucketAvg returns the average fractional frequency of the uniform
// bucket (0 when the bucket is empty).
func (h *Hist) BucketAvg() float64 {
	if c := h.bitmap.Card(); c > 0 {
		return h.mass / float64(c)
	}
	return 0
}

// SizeBytes returns the storage charge of the histogram.
func (h *Hist) SizeBytes() int {
	return len(h.top)*TermBytes + h.bitmap.Runs()*RunBytes
}

// Frequency returns the (estimated) fractional frequency of term t: exact
// if indexed, the bucket average if the term's bit is set, 0 otherwise.
func (h *Hist) Frequency(t int) float64 {
	if f, ok := h.top[t]; ok {
		return f
	}
	if h.bitmap.Contains(t) {
		return h.BucketAvg()
	}
	return 0
}

// Selectivity estimates the fraction of elements containing every term in
// terms (term independence across conjuncts, as in the Boolean IR model).
func (h *Hist) Selectivity(terms []int) float64 {
	sel := 1.0
	for _, t := range terms {
		sel *= h.Frequency(t)
		if sel == 0 {
			return 0
		}
	}
	return sel
}

// TopTerms returns the indexed term ids sorted by descending frequency
// (ties by id). These are the atomic term predicates of the Δ metric.
func (h *Hist) TopTerms() []int {
	out := make([]int, 0, len(h.top))
	for t := range h.top {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := h.top[out[i]], h.top[out[j]]
		if fi != fj {
			return fi > fj
		}
		return out[i] < out[j]
	})
	return out
}

// BucketSample returns up to k term ids from the uniform bucket.
func (h *Hist) BucketSample(k int) []int {
	ids := h.bitmap.IDs()
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// Compress performs tv_cmprs(u, b): it demotes the b lowest-frequency
// indexed terms into the uniform bucket, folding their mass into the
// bucket average. It returns a new histogram and the number of terms
// actually demoted (possibly < b when fewer are indexed).
func (h *Hist) Compress(b int) (*Hist, int) {
	if b <= 0 || len(h.top) == 0 {
		return h, 0
	}
	terms := h.TopTerms()
	// Demote from the low-frequency end.
	if b > len(terms) {
		b = len(terms)
	}
	demote := terms[len(terms)-b:]
	out := &Hist{n: h.n, top: make(map[int]float64, len(h.top)-b), mass: h.mass}
	for t, f := range h.top {
		out.top[t] = f
	}
	for _, t := range demote {
		out.mass += out.top[t]
		delete(out.top, t)
	}
	out.bitmap = h.bitmap.Add(demote...)
	return out, b
}

// Merge fuses two histograms into the summary of the combined element
// collection: the weighted centroid combination
// w = (|u|·w_u + |v|·w_v) / (|u|+|v|) of the paper's TEXT fusion f().
// Terms indexed in either input stay indexed; uniform buckets are OR-ed
// with their masses combined by the same weights.
func Merge(a, b *Hist) *Hist {
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a.Clone()
	}
	n := a.n + b.n
	out := &Hist{n: n, top: make(map[int]float64, len(a.top)+len(b.top))}
	if n == 0 {
		out.bitmap = rle.FromSorted(nil)
		return out
	}
	indexed := make(map[int]struct{}, len(a.top)+len(b.top))
	for t := range a.top {
		indexed[t] = struct{}{}
	}
	for t := range b.top {
		indexed[t] = struct{}{}
	}
	for t := range indexed {
		out.top[t] = (a.n*a.Frequency(t) + b.n*b.Frequency(t)) / n
	}
	// Uniform bucket: bits not promoted to the index. A term counted in
	// an input's bucket but now indexed must not contribute its average
	// twice, so masses are recomputed from the surviving bits.
	bits := a.bitmap.Or(b.bitmap)
	var drop []int
	for _, t := range bits.IDs() {
		if _, ok := indexed[t]; ok {
			drop = append(drop, t)
		}
	}
	out.bitmap = bits.Remove(drop...)
	mass := 0.0
	avgA, avgB := a.BucketAvg(), b.BucketAvg()
	for _, t := range out.bitmap.IDs() {
		w := 0.0
		if a.bitmap.Contains(t) {
			w += a.n * avgA
		}
		if b.bitmap.Contains(t) {
			w += b.n * avgB
		}
		mass += w / n
	}
	out.mass = mass
	return out
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	if h == nil {
		return nil
	}
	out := &Hist{n: h.n, top: make(map[int]float64, len(h.top)), bitmap: h.bitmap, mass: h.mass}
	for t, f := range h.top {
		out.top[t] = f
	}
	return out
}

// Validate checks internal invariants: frequencies in [0,1], indexed
// terms disjoint from the bucket, non-negative mass.
func (h *Hist) Validate() error {
	for t, f := range h.top {
		if f < -1e-9 || f > 1+1e-9 {
			return fmt.Errorf("termhist: term %d has frequency %g", t, f)
		}
		if h.bitmap.Contains(t) {
			return fmt.Errorf("termhist: term %d both indexed and in the bucket", t)
		}
	}
	if h.mass < -1e-9 {
		return fmt.Errorf("termhist: negative bucket mass %g", h.mass)
	}
	if h.bitmap.Card() == 0 && math.Abs(h.mass) > 1e-9 {
		return fmt.Errorf("termhist: empty bucket with mass %g", h.mass)
	}
	return nil
}
