// Package wire implements the compact binary encoding shared by the
// synopsis serialization code: varint integers, IEEE float64s and
// length-prefixed strings over sticky-error reader/writer wrappers.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer encodes primitives to an underlying stream. The first error
// sticks; callers check Err (or Flush) once at the end.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int64 { return w.n }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	w.err = err
}

// Int encodes a signed integer as a zig-zag varint.
func (w *Writer) Int(v int) {
	n := binary.PutVarint(w.buf[:], int64(v))
	w.write(w.buf[:n])
}

// Uint encodes an unsigned integer as a varint.
func (w *Writer) Uint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Float encodes a float64.
func (w *Writer) Float(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.write(b[:])
}

// String encodes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.write([]byte(s))
}

// Bytes encodes raw bytes without a prefix.
func (w *Writer) Bytes(p []byte) { w.write(p) }

// Reader decodes primitives from an underlying stream with a sticky
// error. When the total input size is known — detected automatically
// for in-memory readers exposing Len(), or declared with SetLimit —
// length prefixes are validated against the remaining input before any
// allocation, so a corrupt or truncated file fails with a sticky error
// instead of a huge allocation.
type Reader struct {
	r *bufio.Reader
	// n counts bytes consumed so far.
	n int64
	// limit is the total input size when known, -1 otherwise; the
	// remaining input is limit - n.
	limit int64
	err   error
}

// NewReader wraps r. If r exposes the number of unread bytes via a
// Len() int method (bytes.Reader, bytes.Buffer, strings.Reader), that
// size becomes the reader's limit and every length prefix is validated
// against it.
func NewReader(r io.Reader) *Reader {
	rr := &Reader{r: bufio.NewReader(r), limit: -1}
	if l, ok := r.(interface{ Len() int }); ok {
		rr.limit = int64(l.Len())
	}
	return rr
}

// SetLimit declares the total input size in bytes (e.g. a file's Stat
// size), enabling length-prefix validation on streams that cannot
// report their own length. A negative n removes the limit.
func (r *Reader) SetLimit(n int64) {
	if n < 0 {
		r.limit = -1
		return
	}
	r.limit = n
}

// Err returns the first read error.
func (r *Reader) Err() error { return r.err }

// Len returns the number of bytes consumed so far.
func (r *Reader) Len() int64 { return r.n }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// remaining returns the unread input size, or -1 when unknown.
func (r *Reader) remaining() int64 {
	if r.limit < 0 {
		return -1
	}
	if r.n > r.limit {
		return 0
	}
	return r.limit - r.n
}

// ReadByte implements io.ByteReader over the counted stream (it feeds
// the varint decoders; callers should prefer Int/Uint).
func (r *Reader) ReadByte() (byte, error) {
	b, err := r.r.ReadByte()
	if err == nil {
		r.n++
	}
	return b, err
}

// full reads exactly len(b) bytes, counting them.
func (r *Reader) full(b []byte) error {
	n, err := io.ReadFull(r.r, b)
	r.n += int64(n)
	return err
}

// Int decodes a zig-zag varint.
func (r *Reader) Int() int {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r)
	if err != nil {
		r.fail(fmt.Errorf("wire: varint: %w", err))
		return 0
	}
	return int(v)
}

// Uint decodes a varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r)
	if err != nil {
		r.fail(fmt.Errorf("wire: uvarint: %w", err))
		return 0
	}
	return v
}

// Float decodes a float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if err := r.full(b[:]); err != nil {
		r.fail(fmt.Errorf("wire: float: %w", err))
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// maxStringLen guards against corrupt length prefixes.
const maxStringLen = 1 << 24

// stringChunk bounds the per-step allocation of a length-prefixed read
// on streams of unknown size: a lying prefix costs at most one chunk
// before the truncated stream surfaces as a sticky error.
const stringChunk = 64 << 10

// String decodes a length-prefixed string. The length is validated
// against maxStringLen, and against the remaining input when the total
// size is known; otherwise the body is read in bounded chunks so a
// corrupt prefix cannot force a large up-front allocation.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.fail(fmt.Errorf("wire: string length %d too large", n))
		return ""
	}
	if rem := r.remaining(); rem >= 0 && int64(n) > rem {
		r.fail(fmt.Errorf("wire: string length %d exceeds remaining input %d", n, rem))
		return ""
	}
	if n <= stringChunk {
		b := make([]byte, n)
		if err := r.full(b); err != nil {
			r.fail(fmt.Errorf("wire: string body: %w", err))
			return ""
		}
		return string(b)
	}
	b := make([]byte, 0, stringChunk)
	var chunk [stringChunk]byte
	for got := uint64(0); got < n; {
		step := n - got
		if step > stringChunk {
			step = stringChunk
		}
		if err := r.full(chunk[:step]); err != nil {
			r.fail(fmt.Errorf("wire: string body: %w", err))
			return ""
		}
		b = append(b, chunk[:step]...)
		got += step
	}
	return string(b)
}

// Raw consumes exactly n bytes and returns them (nil after a failure).
// n is a caller-chosen constant (e.g. a magic length), not untrusted
// input.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	if err := r.full(b); err != nil {
		r.fail(fmt.Errorf("wire: raw read: %w", err))
		return nil
	}
	return b
}

// Expect consumes len(want) bytes and fails unless they match.
func (r *Reader) Expect(want []byte) {
	if r.err != nil {
		return
	}
	b := make([]byte, len(want))
	if err := r.full(b); err != nil {
		r.fail(fmt.Errorf("wire: magic: %w", err))
		return
	}
	for i := range want {
		if b[i] != want[i] {
			r.fail(fmt.Errorf("wire: bad magic %q, want %q", b, want))
			return
		}
	}
}
