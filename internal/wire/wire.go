// Package wire implements the compact binary encoding shared by the
// synopsis serialization code: varint integers, IEEE float64s and
// length-prefixed strings over sticky-error reader/writer wrappers.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer encodes primitives to an underlying stream. The first error
// sticks; callers check Err (or Flush) once at the end.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int64 { return w.n }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	w.err = err
}

// Int encodes a signed integer as a zig-zag varint.
func (w *Writer) Int(v int) {
	n := binary.PutVarint(w.buf[:], int64(v))
	w.write(w.buf[:n])
}

// Uint encodes an unsigned integer as a varint.
func (w *Writer) Uint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Float encodes a float64.
func (w *Writer) Float(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.write(b[:])
}

// String encodes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.write([]byte(s))
}

// Bytes encodes raw bytes without a prefix.
func (w *Writer) Bytes(p []byte) { w.write(p) }

// Reader decodes primitives from an underlying stream with a sticky
// error.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first read error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Int decodes a zig-zag varint.
func (r *Reader) Int() int {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("wire: varint: %w", err))
		return 0
	}
	return int(v)
}

// Uint decodes a varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("wire: uvarint: %w", err))
		return 0
	}
	return v
}

// Float decodes a float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.fail(fmt.Errorf("wire: float: %w", err))
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// maxStringLen guards against corrupt length prefixes.
const maxStringLen = 1 << 24

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.fail(fmt.Errorf("wire: string length %d too large", n))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail(fmt.Errorf("wire: string body: %w", err))
		return ""
	}
	return string(b)
}

// Expect consumes len(want) bytes and fails unless they match.
func (r *Reader) Expect(want []byte) {
	if r.err != nil {
		return
	}
	b := make([]byte, len(want))
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail(fmt.Errorf("wire: magic: %w", err))
		return
	}
	for i := range want {
		if b[i] != want[i] {
			r.fail(fmt.Errorf("wire: bad magic %q, want %q", b, want))
			return
		}
	}
}
