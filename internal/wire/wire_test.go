package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(-42)
	w.Int(0)
	w.Int(1 << 40)
	w.Uint(7)
	w.Float(3.14159)
	w.Float(math.Inf(1))
	w.String("hello")
	w.String("")
	w.Bytes([]byte("RAW"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != int64(buf.Len()) {
		t.Fatalf("Len = %d, wrote %d", w.Len(), buf.Len())
	}

	r := NewReader(&buf)
	if got := r.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Int(); got != 0 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Int(); got != 1<<40 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Uint(); got != 7 {
		t.Fatalf("Uint = %d", got)
	}
	if got := r.Float(); got != 3.14159 {
		t.Fatalf("Float = %g", got)
	}
	if got := r.Float(); !math.IsInf(got, 1) {
		t.Fatalf("Float = %g", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	r.Expect([]byte("RAW"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.Int() // EOF
	if r.Err() == nil {
		t.Fatal("no error on empty stream")
	}
	// Further reads return zero values without panicking.
	if r.Uint() != 0 || r.Float() != 0 || r.String() != "" {
		t.Fatal("reads after error returned values")
	}
}

func TestExpectMismatch(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("WRONG")))
	r.Expect([]byte("MAGIC"))
	if r.Err() == nil {
		t.Fatal("Expect accepted wrong magic")
	}
}

func TestStringLengthGuard(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint(1 << 30) // absurd length prefix
	_ = w.Flush()
	r := NewReader(&buf)
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("oversized string accepted")
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Int(int(v))
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			if r.Int() != int(v) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Float(v)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			got := r.Float()
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
