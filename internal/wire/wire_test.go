package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(-42)
	w.Int(0)
	w.Int(1 << 40)
	w.Uint(7)
	w.Float(3.14159)
	w.Float(math.Inf(1))
	w.String("hello")
	w.String("")
	w.Bytes([]byte("RAW"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != int64(buf.Len()) {
		t.Fatalf("Len = %d, wrote %d", w.Len(), buf.Len())
	}

	r := NewReader(&buf)
	if got := r.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Int(); got != 0 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Int(); got != 1<<40 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Uint(); got != 7 {
		t.Fatalf("Uint = %d", got)
	}
	if got := r.Float(); got != 3.14159 {
		t.Fatalf("Float = %g", got)
	}
	if got := r.Float(); !math.IsInf(got, 1) {
		t.Fatalf("Float = %g", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	r.Expect([]byte("RAW"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.Int() // EOF
	if r.Err() == nil {
		t.Fatal("no error on empty stream")
	}
	// Further reads return zero values without panicking.
	if r.Uint() != 0 || r.Float() != 0 || r.String() != "" {
		t.Fatal("reads after error returned values")
	}
}

func TestExpectMismatch(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("WRONG")))
	r.Expect([]byte("MAGIC"))
	if r.Err() == nil {
		t.Fatal("Expect accepted wrong magic")
	}
}

func TestStringLengthGuard(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint(1 << 30) // absurd length prefix
	_ = w.Flush()
	r := NewReader(&buf)
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("oversized string accepted")
	}
}

func TestStringLengthExceedsRemaining(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint(1 << 20) // claims 1 MiB follows
	w.Bytes([]byte("short"))
	_ = w.Flush()
	// bytes.Reader exposes Len, so the limit is detected automatically
	// and the lying prefix is rejected before any body allocation.
	r := NewReader(bytes.NewReader(buf.Bytes()))
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("length beyond remaining input accepted")
	}
	if got := r.String(); got != "" || r.Err() == nil {
		t.Fatal("error did not stick")
	}
}

func TestSetLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint(1 << 20)
	_ = w.Flush()
	// Simulate a stream of unknown type whose size the caller learned
	// out of band (e.g. from os.File.Stat).
	r := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes())))
	if r.remaining() != -1 {
		t.Fatal("limit detected on opaque reader")
	}
	r.SetLimit(int64(buf.Len()))
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("length beyond declared limit accepted")
	}
}

func TestChunkedStringTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint(maxStringLen) // largest admissible lie
	w.Bytes(make([]byte, 3*stringChunk/2))
	_ = w.Flush()
	// An opaque stream cannot validate the length up front; the chunked
	// read must fail after the real bytes run out instead of allocating
	// the full claimed length.
	r := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes())))
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("truncated chunked string accepted")
	}
}

func TestLargeStringRoundTrip(t *testing.T) {
	long := strings.Repeat("x", 3*stringChunk+17)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.String(long)
	_ = w.Flush()
	r := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes())))
	if got := r.String(); got != long {
		t.Fatalf("chunked round trip corrupted string (len %d vs %d)", len(got), len(long))
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderCountsBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(-42)
	w.Uint(300)
	w.Float(1.5)
	w.String("hello")
	_ = w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	_ = r.Int()
	_ = r.Uint()
	_ = r.Float()
	_ = r.String()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Len() != int64(buf.Len()) {
		t.Fatalf("consumed %d bytes, stream has %d", r.Len(), buf.Len())
	}
}

func TestRaw(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("MAGICrest")))
	if got := r.Raw(5); string(got) != "MAGIC" {
		t.Fatalf("Raw = %q", got)
	}
	if got := r.Raw(99); got != nil || r.Err() == nil {
		t.Fatal("Raw past EOF did not fail")
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Int(int(v))
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			if r.Int() != int(v) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Float(v)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			got := r.Float()
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
