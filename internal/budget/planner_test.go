package budget

import (
	"reflect"
	"testing"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/profile"
)

// allPresent is a synopsis split where every component exists.
var allPresent = profile.BudgetSplit{
	NodeBytes: 3000, EdgeBytes: 1000,
	HistogramBytes: 2000, PSTBytes: 2000, TermHistBytes: 2000,
}

func classes(shares, errs map[string]float64) []profile.ClassStat {
	var out []profile.ClassStat
	for _, cl := range accuracy.Classes() {
		name := cl.String()
		out = append(out, profile.ClassStat{
			Class:        name,
			TrafficShare: shares[name],
			RelError:     errs[name],
			Pain:         shares[name] * errs[name],
		})
	}
	return out
}

// TestPlannerFloors: a profile where one class carries 100% of the
// traffic must still leave a non-zero floor for every component that
// exists in the synopsis — the satellite's starvation guarantee.
func TestPlannerFloors(t *testing.T) {
	const total = 100_000
	d, err := Plan(Inputs{
		TotalBytes: total,
		Classes:    classes(map[string]float64{"range": 1}, map[string]float64{"range": 0.5}),
		Actual:     allPresent,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Plan
	if p.Provenance != core.ProvenanceWorkload {
		t.Fatalf("provenance = %q, want workload", p.Provenance)
	}
	if p.TotalBytes != total {
		t.Fatalf("total %d, want %d", p.TotalBytes, total)
	}
	if got := p.NodeBytes + p.EdgeBytes; float64(got) < MinStructShare*total {
		t.Fatalf("struct bytes %d below floor %v", got, MinStructShare*total)
	}
	for name, v := range map[string]int{
		"histogram": p.HistogramBytes, "pst": p.PSTBytes, "termhist": p.TermHistBytes,
	} {
		if float64(v) < MinComponentShare*total {
			t.Fatalf("%s bytes %d below floor %v despite zero traffic", name, v, MinComponentShare*total)
		}
	}
	// The all-range workload must still dominate: histogram gets the
	// biggest value slice.
	if p.HistogramBytes <= p.PSTBytes || p.HistogramBytes <= p.TermHistBytes {
		t.Fatalf("histogram not favored by all-range workload: %+v", p)
	}
}

// TestPlannerStructCap: all-structural traffic is bounded by
// MaxStructShare so value summaries never starve wholesale.
func TestPlannerStructCap(t *testing.T) {
	const total = 100_000
	d, err := Plan(Inputs{
		TotalBytes: total,
		Classes:    classes(map[string]float64{"struct": 1}, map[string]float64{"struct": 0.9}),
		Actual:     allPresent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Plan.NodeBytes + d.Plan.EdgeBytes; float64(got) > MaxStructShare*total {
		t.Fatalf("struct bytes %d above cap %v", got, MaxStructShare*total)
	}
}

// TestPlannerHysteresis: a class share oscillating inside the dead band
// must not flip the plan from window to window, while a real shift
// must. This is the satellite's thrash guarantee.
func TestPlannerHysteresis(t *testing.T) {
	const total = 100_000
	mix := func(ft float64) []profile.ClassStat {
		return classes(
			map[string]float64{"ftcontains": ft, "struct": 1 - ft},
			map[string]float64{"ftcontains": 0.4, "struct": 0.01},
		)
	}
	base, err := Plan(Inputs{TotalBytes: total, Classes: mix(0.30), Actual: allPresent})
	if err != nil {
		t.Fatal(err)
	}
	cur := base.Plan
	// Five windows of jitter around the 0.30 share.
	for i, ft := range []float64{0.31, 0.29, 0.32, 0.28, 0.30} {
		d, err := Plan(Inputs{TotalBytes: total, Classes: mix(ft), Actual: allPresent, Current: cur})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Held {
			t.Fatalf("window %d (share %.2f): jitter flipped the plan:\n cur %v\n new %v", i, ft, cur, d.Plan)
		}
		if d.Plan != cur {
			t.Fatalf("window %d: held decision changed the plan", i)
		}
	}
	// A genuine mix shift must escape the dead band.
	d, err := Plan(Inputs{TotalBytes: total, Classes: mix(0.80), Actual: allPresent, Current: cur})
	if err != nil {
		t.Fatal(err)
	}
	if d.Held || d.Plan == cur {
		t.Fatalf("real workload shift was held: %+v", d)
	}
	// Hysteresis never holds against a static plan: the first adaptive
	// rebuild must be allowed to move off the configured split.
	static := core.PlanFromBudgets(total/2, total-total/2)
	d, err = Plan(Inputs{TotalBytes: total, Classes: mix(0.30), Actual: allPresent, Current: static})
	if err != nil {
		t.Fatal(err)
	}
	if d.Held {
		t.Fatal("planner held a static plan")
	}
}

// TestPlannerDeterministic: identical inputs yield identical decisions.
func TestPlannerDeterministic(t *testing.T) {
	in := Inputs{
		TotalBytes: 77_777,
		Classes: classes(
			map[string]float64{"range": 0.2, "substring": 0.3, "ftcontains": 0.1, "struct": 0.4},
			map[string]float64{"range": 0.01, "substring": 0.2, "ftcontains": 0.4, "struct": 0.005},
		),
		WorkloadFingerprint: "deadbeefdeadbeef",
		Actual:              allPresent,
	}
	a, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different decisions:\n%+v\n%+v", a, b)
	}
	if a.Plan.WorkloadFingerprint != in.WorkloadFingerprint {
		t.Fatalf("plan lost the workload fingerprint: %+v", a.Plan)
	}
	if got := a.Plan.NodeBytes + a.Plan.EdgeBytes + a.Plan.HistogramBytes + a.Plan.PSTBytes + a.Plan.TermHistBytes; got != in.TotalBytes {
		t.Fatalf("component bytes sum %d != total %d", got, in.TotalBytes)
	}
}

// TestPlannerAbsentComponent: a component with no summaries in the
// served synopsis gets no budget, whatever the traffic says.
func TestPlannerAbsentComponent(t *testing.T) {
	actual := allPresent
	actual.TermHistBytes = 0
	d, err := Plan(Inputs{
		TotalBytes: 50_000,
		Classes:    classes(map[string]float64{"ftcontains": 1}, map[string]float64{"ftcontains": 0.9}),
		Actual:     actual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Plan.TermHistBytes != 0 {
		t.Fatalf("absent termhist component was funded: %+v", d.Plan)
	}
}

// TestPlannerIdleFallsBackToActual: with no traffic at all the plan
// reproduces the synopsis's own proportions instead of inventing a
// split.
func TestPlannerIdleFallsBackToActual(t *testing.T) {
	d, err := Plan(Inputs{TotalBytes: 10_000, Classes: classes(nil, nil), Actual: allPresent})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Plan
	if p.NodeBytes+p.EdgeBytes == 0 || p.HistogramBytes == 0 || p.PSTBytes == 0 || p.TermHistBytes == 0 {
		t.Fatalf("idle plan starved a present component: %+v", p)
	}
	// allPresent is 40/20/20/20: struct should hold the largest slice.
	if s := p.NodeBytes + p.EdgeBytes; s <= p.HistogramBytes {
		t.Fatalf("idle plan ignored actual proportions: %+v", p)
	}
}

func TestPlannerRejectsNonPositiveTotal(t *testing.T) {
	if _, err := Plan(Inputs{TotalBytes: 0, Actual: allPresent}); err == nil {
		t.Fatal("zero total accepted")
	}
}
