// Package budget turns a live workload profile into a first-class
// BudgetPlan: the §4.3 "allocate bytes where the workload hurts" loop,
// closed. The planner is a pure, deterministic function of its inputs —
// the same profile, synopsis split, and total always yield the same
// plan — so adaptive rebuilds are reproducible and testable. Two
// policies keep it safe to run unattended: per-component floors (no
// summary class is ever starved to zero just because this window's
// traffic ignored it) and hysteresis (a jittery class mix oscillating
// around a threshold does not flip the plan, and therefore does not
// thrash rebuilds).
package budget

import (
	"fmt"
	"math"
	"sort"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/profile"
)

// The planner's policy knobs. They are constants, not configuration:
// the planner's value is that every deployment adapts the same way, so
// a plan can be explained by its inputs alone.
const (
	// MinComponentShare is the floor for every present non-struct
	// component: even a component whose classes saw zero traffic this
	// window keeps 5% of the total, because the next window may need it
	// and rebuilding the summaries from the document costs far more
	// than the reserved bytes.
	MinComponentShare = 0.05
	// MinStructShare and MaxStructShare bound the structural budget:
	// below the floor the synopsis graph degrades into a handful of
	// mega-clusters that poison every estimate (value predicates
	// included); above the cap value summaries starve wholesale.
	MinStructShare = 0.15
	MaxStructShare = 0.85
	// HysteresisShare is the dead band: a candidate plan within this
	// share distance of the current workload plan (per component, same
	// total) is not worth a rebuild, and the current plan is kept.
	HysteresisShare = 0.04
)

// Components in report order. Struct funds node+edge bytes; the other
// three fund one value-summary kind each.
const (
	ComponentStruct    = "struct"
	ComponentHistogram = "histogram"
	ComponentPST       = "pst"
	ComponentTermHist  = "termhist"
)

var componentOrder = []string{ComponentStruct, ComponentHistogram, ComponentPST, ComponentTermHist}

// Inputs are everything one planning decision depends on.
type Inputs struct {
	// TotalBytes is the unified byte budget the plan splits.
	TotalBytes int `json:"total_bytes"`
	// Classes is the profiled class mix with joined accuracy (the
	// WorkloadProfile's class rows: traffic share, rel error, pain).
	Classes []profile.ClassStat `json:"classes"`
	// WorkloadFingerprint identifies the WorkloadProfile the classes
	// came from; it is stamped into the produced plan.
	WorkloadFingerprint string `json:"workload_fingerprint,omitempty"`
	// Actual is the served synopsis's byte split. It supplies the
	// node/edge ratio (the builder cannot trade nodes against edges,
	// so the plan records the observed proportion) and the presence
	// signal: a component with zero actual bytes summarizes nothing in
	// this document and gets no budget.
	Actual profile.BudgetSplit `json:"actual"`
	// Current is the plan behind the serving synopsis, for hysteresis.
	// Zero means none (first adaptive rebuild).
	Current core.BudgetPlan `json:"current,omitzero"`
}

// ComponentRow explains one component's allocation.
type ComponentRow struct {
	Component string `json:"component"`
	// TrafficShare, RelError and Pain aggregate the classes the
	// component answers (traffic-weighted error; pain = share × error).
	TrafficShare float64 `json:"traffic_share"`
	RelError     float64 `json:"rel_error"`
	Pain         float64 `json:"pain"`
	// Weight is the raw allocation weight (share + pain); TargetShare
	// is the weight after floors and caps; PlannedBytes is its slice
	// of the total.
	Weight       float64 `json:"weight"`
	TargetShare  float64 `json:"target_share"`
	PlannedBytes int     `json:"planned_bytes"`
	// Present is false for components whose summaries do not exist in
	// the served synopsis (nothing to fund).
	Present bool `json:"present"`
}

// Decision is one planner run: the plan, the per-component arithmetic
// that produced it, and whether hysteresis held the previous plan.
type Decision struct {
	Plan core.BudgetPlan `json:"plan"`
	Rows []ComponentRow  `json:"rows"`
	// Held reports that the candidate split sat inside the hysteresis
	// dead band of Inputs.Current, so Plan is the current plan and no
	// rebuild is warranted.
	Held bool `json:"held"`
	// Reason is a one-line explanation for logs and /debug/budget.
	Reason string `json:"reason"`
}

// classComponent maps an accuracy class name to the component funding
// it (the same mapping as profile coverage: range→histogram,
// substring→pst, ftcontains/ftsim→termhist, everything else→struct).
func classComponent(class string) string {
	switch class {
	case accuracy.Range.String():
		return ComponentHistogram
	case accuracy.Substring.String():
		return ComponentPST
	case accuracy.FTContains.String(), accuracy.FTSim.String():
		return ComponentTermHist
	default:
		return ComponentStruct
	}
}

// Plan maps a workload profile and the served synopsis's state to a
// BudgetPlan with provenance "workload". It is deterministic and pure.
func Plan(in Inputs) (Decision, error) {
	if in.TotalBytes <= 0 {
		return Decision{}, fmt.Errorf("budget: non-positive total %d", in.TotalBytes)
	}

	rows := map[string]*ComponentRow{}
	for _, c := range componentOrder {
		rows[c] = &ComponentRow{Component: c}
	}
	rows[ComponentStruct].Present = true // a synopsis always has structure
	rows[ComponentHistogram].Present = in.Actual.HistogramBytes > 0
	rows[ComponentPST].Present = in.Actual.PSTBytes > 0
	rows[ComponentTermHist].Present = in.Actual.TermHistBytes > 0

	// Aggregate the class mix per component. Weight = share + pain =
	// share × (1 + relError): traffic earns budget, error-afflicted
	// traffic earns more.
	for _, cl := range in.Classes {
		r := rows[classComponent(cl.Class)]
		r.TrafficShare += cl.TrafficShare
		r.Pain += cl.Pain
	}
	var weightSum float64
	for _, c := range componentOrder {
		r := rows[c]
		if r.TrafficShare > 0 {
			r.RelError = r.Pain / r.TrafficShare
		}
		if r.Present {
			r.Weight = r.TrafficShare + r.Pain
			weightSum += r.Weight
		}
	}

	// No traffic signal at all: fall back to the synopsis's observed
	// proportions so an idle service plans the split it already has.
	if weightSum == 0 {
		actual := map[string]int{
			ComponentStruct:    in.Actual.NodeBytes + in.Actual.EdgeBytes,
			ComponentHistogram: in.Actual.HistogramBytes,
			ComponentPST:       in.Actual.PSTBytes,
			ComponentTermHist:  in.Actual.TermHistBytes,
		}
		var actualSum int
		for _, c := range componentOrder {
			actualSum += actual[c]
		}
		for _, c := range componentOrder {
			r := rows[c]
			if !r.Present {
				continue
			}
			if actualSum > 0 {
				r.Weight = float64(actual[c]) / float64(actualSum)
			} else {
				r.Weight = 1
			}
			weightSum += r.Weight
		}
	}

	// Floors first, then the remaining mass by weight: every present
	// component keeps its floor no matter how lopsided the traffic.
	floors := map[string]float64{ComponentStruct: MinStructShare}
	var floorSum float64
	for _, c := range componentOrder {
		r := rows[c]
		if !r.Present {
			continue
		}
		f, ok := floors[c]
		if !ok {
			f = MinComponentShare
		}
		floorSum += f
		r.TargetShare = f
	}
	for _, c := range componentOrder {
		r := rows[c]
		if r.Present && weightSum > 0 {
			r.TargetShare += (1 - floorSum) * r.Weight / weightSum
		}
	}

	// Cap the structural share, spilling the excess onto the value
	// components in proportion to their target shares.
	if s := rows[ComponentStruct]; s.TargetShare > MaxStructShare {
		excess := s.TargetShare - MaxStructShare
		s.TargetShare = MaxStructShare
		var valSum float64
		for _, c := range componentOrder[1:] {
			valSum += rows[c].TargetShare
		}
		for _, c := range componentOrder[1:] {
			r := rows[c]
			if !r.Present {
				continue
			}
			if valSum > 0 {
				r.TargetShare += excess * r.TargetShare / valSum
			} else {
				// No value component exists; structure keeps it all.
				s.TargetShare += excess
				break
			}
		}
	}

	// Integer byte slices by largest remainder, so they sum exactly.
	planned := apportion(in.TotalBytes, rows)
	nodeBytes, edgeBytes := splitStruct(planned[ComponentStruct], in.Actual)

	plan, err := core.BudgetPlan{
		NodeBytes:           nodeBytes,
		EdgeBytes:           edgeBytes,
		HistogramBytes:      planned[ComponentHistogram],
		PSTBytes:            planned[ComponentPST],
		TermHistBytes:       planned[ComponentTermHist],
		Provenance:          core.ProvenanceWorkload,
		WorkloadFingerprint: in.WorkloadFingerprint,
	}.Normalize()
	if err != nil {
		return Decision{}, err
	}

	d := Decision{Plan: plan, Reason: fmt.Sprintf("planned from workload %s", in.WorkloadFingerprint)}
	for _, c := range componentOrder {
		d.Rows = append(d.Rows, *rows[c])
	}

	// Hysteresis: against another workload plan of the same total, a
	// move inside the dead band is jitter, not a trend — keep what we
	// have. Static and auto plans never hold: the first adaptive
	// rebuild should always be allowed to move off them.
	if in.Current.Provenance == core.ProvenanceWorkload && in.Current.TotalBytes == in.TotalBytes {
		if maxShareDelta(plan, in.Current) < HysteresisShare {
			d.Plan = in.Current
			d.Held = true
			d.Reason = fmt.Sprintf("held current plan: share delta below %.2f dead band", HysteresisShare)
		}
	}
	return d, nil
}

// apportion distributes total bytes over the components by TargetShare
// with largest-remainder rounding (deterministic; ties break in
// component order). It also back-fills each row's PlannedBytes.
func apportion(total int, rows map[string]*ComponentRow) map[string]int {
	type slice struct {
		c    string
		ip   int
		frac float64
	}
	slices := make([]slice, 0, len(componentOrder))
	assigned := 0
	for _, c := range componentOrder {
		exact := rows[c].TargetShare * float64(total)
		ip := int(math.Floor(exact))
		assigned += ip
		slices = append(slices, slice{c: c, ip: ip, frac: exact - math.Floor(exact)})
	}
	rem := total - assigned
	sort.SliceStable(slices, func(i, j int) bool { return slices[i].frac > slices[j].frac })
	for i := 0; i < len(slices) && rem > 0; i++ {
		slices[i].ip++
		rem--
	}
	out := map[string]int{}
	for _, s := range slices {
		out[s.c] = s.ip
		rows[s.c].PlannedBytes = s.ip
	}
	return out
}

// splitStruct divides the structural slice between nodes and edges in
// the served synopsis's observed proportion (all nodes when unknown —
// the builder treats the pair as one budget either way).
func splitStruct(structBytes int, actual profile.BudgetSplit) (node, edge int) {
	an, ae := actual.NodeBytes, actual.EdgeBytes
	if an+ae == 0 {
		return structBytes, 0
	}
	node = int(math.Round(float64(structBytes) * float64(an) / float64(an+ae)))
	return node, structBytes - node
}

// maxShareDelta is the largest per-component share difference between
// two plans of the same total.
func maxShareDelta(a, b core.BudgetPlan) float64 {
	if a.TotalBytes == 0 {
		return 0
	}
	t := float64(a.TotalBytes)
	d := 0.0
	for _, pair := range [][2]int{
		{a.NodeBytes + a.EdgeBytes, b.NodeBytes + b.EdgeBytes},
		{a.HistogramBytes, b.HistogramBytes},
		{a.PSTBytes, b.PSTBytes},
		{a.TermHistBytes, b.TermHistBytes},
	} {
		if delta := math.Abs(float64(pair[0]-pair[1])) / t; delta > d {
			d = delta
		}
	}
	return d
}
