package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/obs"
	"xcluster/internal/query"
)

// PreparedRow is one dataset of the prepared-execution experiment: the
// per-query cost of the cold path (compile + execute every call) versus
// executing plans compiled once, over the same positive workload.
type PreparedRow struct {
	Dataset string `json:"dataset"`
	// Queries is the workload size; Plans the number of distinct shapes
	// compiled (the plan cache holds one entry per shape).
	Queries int `json:"queries"`
	Plans   int `json:"plans"`
	// CompileMicros is the total one-time compilation cost of the
	// workload, amortized away by plan reuse.
	CompileMicros float64 `json:"compile_micros"`
	// ColdNsPerOp and PreparedNsPerOp are per-estimate wall costs with
	// both caches off versus pre-compiled plans.
	ColdNsPerOp     float64 `json:"cold_ns_per_op"`
	PreparedNsPerOp float64 `json:"prepared_ns_per_op"`
	// Speedup is ColdNsPerOp / PreparedNsPerOp.
	Speedup float64 `json:"speedup"`
	// Mismatches counts prepared results that differed bit-for-bit from
	// the cold path (must be 0; reported so the JSON is self-checking).
	Mismatches int `json:"mismatches"`
	// Metrics is the flattened metrics-registry snapshot of the run:
	// synopsis build-phase timings and pipeline-stage histograms
	// (count/sum/percentiles per series), keyed by Prometheus series name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Accuracy is the per-predicate-class estimation-error report of the
	// workload against the built synopsis: the same aggregation the
	// serving layer exposes at /debug/accuracy, computed offline.
	Accuracy *accuracy.Report `json:"accuracy,omitempty"`
}

// PreparedExperiment measures the compile-once/execute-many win of the
// canonicalize → compile → execute pipeline on one dataset: it times the
// cold path (plan and result caches disabled, so every call recompiles)
// against executing plans prepared once, and cross-checks every result
// bit-for-bit. iters is the total number of estimates per configuration
// (0 means 2000).
func PreparedExperiment(d *Dataset, cfg Config, iters int) (PreparedRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	// The experiment carries its own metrics registry: BuildAt's phase
	// timings land in it, and a post-benchmark traced pass fills the
	// pipeline-stage histograms. The registry snapshot becomes the row's
	// metrics section.
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
	if err != nil {
		return PreparedRow{}, err
	}
	qs := make([]*query.Query, 0, len(d.Workload.Queries))
	for i := range d.Workload.Queries {
		qs = append(qs, d.Workload.Queries[i].Q)
	}
	if len(qs) == 0 {
		return PreparedRow{}, fmt.Errorf("harness: dataset %s has an empty workload", d.Name)
	}

	// Cold: both caches off, so each call is canonicalize + compile +
	// execute from scratch.
	cold := core.NewEstimator(syn)
	cold.SetCacheCapacity(0)
	cold.SetPlanCacheCapacity(0)
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = cold.Selectivity(q) // warm-up pass doubles as ground truth
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		cold.Selectivity(qs[i%len(qs)])
	}
	coldElapsed := time.Since(t0)

	// Prepared: compile each shape once, then execute only.
	est := core.NewEstimator(syn)
	est.SetCacheCapacity(0)
	t0 = time.Now()
	prepared := make([]*core.PreparedQuery, len(qs))
	for i, q := range qs {
		if prepared[i], err = est.Prepare(q); err != nil {
			return PreparedRow{}, fmt.Errorf("harness: prepare %s: %w", q, err)
		}
	}
	compileElapsed := time.Since(t0)
	mismatches := 0
	for i := range qs {
		if prepared[i].Selectivity() != want[i] {
			mismatches++
		}
	}
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		prepared[i%len(prepared)].Selectivity()
	}
	prepElapsed := time.Since(t0)

	// Traced pass, outside the timed loops so tracing overhead cannot
	// perturb the benchmark numbers: one estimate per workload query
	// through the instrumented pipeline fills the per-stage histograms.
	traced := core.NewEstimator(syn)
	traced.SetMetricSink(reg)
	for _, q := range qs {
		if _, err := traced.SelectivityContext(context.Background(), q); err != nil {
			return PreparedRow{}, fmt.Errorf("harness: traced pass %s: %w", q, err)
		}
	}

	// Accuracy snapshot: feed each workload query's estimate/truth pair
	// through the same monitor the serving layer uses, with the
	// workload's sanity bound, so the row embeds the per-class error
	// report alongside the performance numbers.
	mon := accuracy.NewMonitor(accuracy.WithSanity(d.Workload.SanityBound()))
	for i, q := range qs {
		mon.Observe(q, want[i], d.Workload.Queries[i].True)
	}

	row := PreparedRow{
		Dataset:         d.Name,
		Queries:         len(qs),
		Plans:           est.PlanCacheStats().Len,
		CompileMicros:   float64(compileElapsed.Microseconds()),
		ColdNsPerOp:     float64(coldElapsed.Nanoseconds()) / float64(iters),
		PreparedNsPerOp: float64(prepElapsed.Nanoseconds()) / float64(iters),
		Mismatches:      mismatches,
	}
	if row.PreparedNsPerOp > 0 {
		row.Speedup = row.ColdNsPerOp / row.PreparedNsPerOp
	}
	row.Metrics = reg.Snapshot()
	rep := mon.Report()
	row.Accuracy = &rep
	return row, nil
}

// FormatPreparedJSON renders the experiment rows as indented JSON (the
// machine-readable output of `xclusterbench -experiment prepared`).
func FormatPreparedJSON(rows []PreparedRow) string {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// FormatPrepared renders the experiment rows as aligned text.
func FormatPrepared(rows []PreparedRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Prepared Execution (compile once, execute many)\n")
	fmt.Fprintf(&sb, "%-8s %8s %7s %12s %12s %14s %8s\n",
		"", "Queries", "Plans", "Compile(µs)", "Cold ns/op", "Prepared ns/op", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %8d %7d %12.0f %12.0f %14.0f %7.1fx\n",
			r.Dataset, r.Queries, r.Plans, r.CompileMicros, r.ColdNsPerOp, r.PreparedNsPerOp, r.Speedup)
	}
	return sb.String()
}
