package harness

import (
	"fmt"
	"strings"

	"xcluster/internal/core"
	"xcluster/internal/workload"
)

// AutoBudgetRow compares one structural/value split of a unified budget.
type AutoBudgetRow struct {
	Dataset string
	Split   string
	Bstr    int
	// Overall is the average relative error on the held-out workload
	// (queries not shown to the auto-allocation search).
	Overall float64
}

// AutoBudgetExperiment exercises the Section 4.3 future-work extension:
// given one total budget, it compares fixed structural/value splits with
// the split chosen by core.AutoAllocate. The search sees every fourth
// workload query (the "sample workload" of the paper's sketch); all rows
// are scored on the remaining held-out queries, so the auto row cannot
// win by overfitting its sample.
func AutoBudgetExperiment(d *Dataset, cfg Config) ([]AutoBudgetRow, error) {
	cfg = cfg.forDataset(d.Name)
	budgets := cfg.StructBudgets(d)
	total := budgets[len(budgets)-1] + cfg.ValueBudget(d)

	var sample, holdout []workload.Query
	for i, q := range d.Workload.Queries {
		if i%4 == 0 {
			sample = append(sample, q)
		} else {
			holdout = append(holdout, q)
		}
	}
	holdoutW := &workload.Workload{Queries: holdout}
	sanity := holdoutW.SanityBound()

	scoreOn := func(qs []workload.Query, s *core.Synopsis) float64 {
		est := core.NewEstimator(s)
		return workload.AvgRelError(qs, est.Selectivity, sanity)
	}

	var rows []AutoBudgetRow
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		bstr := int(frac * float64(total))
		s, err := core.XClusterBuild(d.Ref, core.BuildOptions{
			StructBudget: bstr, ValueBudget: total - bstr,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AutoBudgetRow{
			Dataset: d.Name,
			Split:   fmt.Sprintf("fixed %2.0f%% struct", frac*100),
			Bstr:    bstr,
			Overall: scoreOn(holdout, s),
		})
	}

	s, bstr, _, err := core.AutoAllocate(d.Ref, total,
		func(s *core.Synopsis) float64 { return scoreOn(sample, s) },
		core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AutoBudgetRow{
		Dataset: d.Name,
		Split:   "auto (sample-guided)",
		Bstr:    bstr,
		Overall: scoreOn(holdout, s),
	})
	return rows, nil
}

// FormatAutoBudget renders the comparison.
func FormatAutoBudget(rows []AutoBudgetRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Auto budget allocation (one unified budget; held-out workload error)\n")
	fmt.Fprintf(&sb, "%-8s %-22s %10s %12s\n", "Dataset", "split", "Bstr(B)", "overall err")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-22s %10d %11.1f%%\n", r.Dataset, r.Split, r.Bstr, r.Overall*100)
	}
	return sb.String()
}
