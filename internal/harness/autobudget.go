package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"xcluster/internal/accuracy"
	"xcluster/internal/budget"
	"xcluster/internal/core"
	"xcluster/internal/profile"
	"xcluster/internal/workload"
	"xcluster/internal/xmltree"
)

// AutoBudgetRow compares one structural/value split of a unified budget.
type AutoBudgetRow struct {
	Dataset string `json:"dataset"`
	// Split is the human label; Provenance classifies the row the way
	// BudgetPlan does: static (fixed split), auto (sample-guided
	// search) or workload (planner output on a profiled class mix).
	Split      string `json:"split"`
	Provenance string `json:"provenance"`
	Bstr       int    `json:"bstr_bytes"`
	Bval       int    `json:"bval_bytes"`
	// Plan carries the full per-component split when the row was built
	// under one (the workload-adaptive row); fixed and auto rows only
	// have the two-way split.
	Plan *core.BudgetPlan `json:"plan,omitempty"`
	// Overall is the average relative error on the held-out workload
	// (queries never shown to the auto search or the planner).
	Overall float64 `json:"overall_err"`
}

// accuracyClass maps a generator class to the accuracy class name the
// profiler reports (the planner's vocabulary): range predicates are
// answered by histograms, substrings by PSTs, keywords by term
// histograms, everything else by structure alone.
func accuracyClass(c workload.Class) string {
	switch c {
	case workload.Numeric:
		return accuracy.Range.String()
	case workload.String:
		return accuracy.Substring.String()
	case workload.Text:
		return accuracy.FTContains.String()
	default:
		return accuracy.Struct.String()
	}
}

// measureSplit computes a synopsis's realized byte split by component —
// the same measurement the serving layer feeds the planner (presence
// and node/edge proportion signals).
func measureSplit(s *core.Synopsis) profile.BudgetSplit {
	sp := profile.BudgetSplit{
		NodeBytes: s.NumNodes() * core.NodeBytes,
		EdgeBytes: s.NumEdges() * core.EdgeBytes,
	}
	for _, n := range s.Nodes() {
		if n.VSum == nil {
			continue
		}
		b := n.VSum.SizeBytes()
		switch n.VSum.Type() {
		case xmltree.TypeNumeric:
			sp.HistogramBytes += b
		case xmltree.TypeString:
			sp.PSTBytes += b
		case xmltree.TypeText:
			sp.TermHistBytes += b
		}
	}
	return sp
}

// sampleClassStats profiles the sample workload through a synopsis the
// way a serving process would: per accuracy class, the traffic share
// and measured relative error, joined into pain = share × error.
func sampleClassStats(sample []workload.Query, s *core.Synopsis, sanity float64) []profile.ClassStat {
	est := core.NewEstimator(s)
	byClass := map[workload.Class][]workload.Query{}
	for _, q := range sample {
		byClass[q.Class] = append(byClass[q.Class], q)
	}
	var stats []profile.ClassStat
	for _, c := range workload.Classes() {
		qs := byClass[c]
		if len(qs) == 0 {
			continue
		}
		share := float64(len(qs)) / float64(len(sample))
		relErr := workload.AvgRelError(qs, est.Selectivity, sanity)
		stats = append(stats, profile.ClassStat{
			Class:        accuracyClass(c),
			Count:        uint64(len(qs)),
			TrafficShare: share,
			RelError:     relErr,
			Pain:         share * relErr,
		})
	}
	return stats
}

// AutoBudgetExperiment exercises the Section 4.3 future-work extension:
// given one total budget, it compares three ways of splitting it —
// fixed structural/value fractions, the split chosen by
// core.AutoAllocate, and the per-component BudgetPlan produced by the
// internal/budget planner from a profiled sample (the same pipeline an
// adaptive rebuild runs in the serving layer). The search and the
// planner see every fourth workload query (the "sample workload" of
// the paper's sketch); all rows are scored on the remaining held-out
// queries, so no adaptive row can win by overfitting its sample.
func AutoBudgetExperiment(d *Dataset, cfg Config) ([]AutoBudgetRow, error) {
	cfg = cfg.forDataset(d.Name)
	budgets := cfg.StructBudgets(d)
	total := budgets[len(budgets)-1] + cfg.ValueBudget(d)

	var sample, holdout []workload.Query
	for i, q := range d.Workload.Queries {
		if i%4 == 0 {
			sample = append(sample, q)
		} else {
			holdout = append(holdout, q)
		}
	}
	holdoutW := &workload.Workload{Queries: holdout}
	sanity := holdoutW.SanityBound()

	scoreOn := func(qs []workload.Query, s *core.Synopsis) float64 {
		est := core.NewEstimator(s)
		return workload.AvgRelError(qs, est.Selectivity, sanity)
	}

	var rows []AutoBudgetRow
	addRow := func(label string, s *core.Synopsis) {
		plan := s.Fingerprint().Plan
		row := AutoBudgetRow{
			Dataset:    d.Name,
			Split:      label,
			Provenance: string(plan.Provenance),
			Bstr:       plan.StructBudget(),
			Bval:       plan.ValueBudget(),
			Overall:    scoreOn(holdout, s),
		}
		if plan.HasValueSplit() {
			row.Plan = &plan
		}
		rows = append(rows, row)
	}

	// Fixed splits. The 50/50 row doubles as the acceptance baseline
	// for the adaptive row and as the planner's "serving synopsis":
	// its measured class errors and byte split are the profile an
	// adaptive rebuild would observe.
	var baseline *core.Synopsis
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		bstr := int(frac * float64(total))
		s, err := core.XClusterBuild(d.Ref, core.BuildOptions{
			StructBudget: bstr, ValueBudget: total - bstr,
		})
		if err != nil {
			return nil, err
		}
		if frac == 0.5 {
			baseline = s
		}
		addRow(fmt.Sprintf("fixed %2.0f%% struct", frac*100), s)
	}

	s, _, _, err := core.AutoAllocate(d.Ref, total,
		func(s *core.Synopsis) float64 { return scoreOn(sample, s) },
		core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	addRow("auto (sample-guided)", s)

	// Workload-adaptive: profile the sample through the 50/50 baseline,
	// plan a per-component split from the class mix, rebuild under it.
	dec, err := budget.Plan(budget.Inputs{
		TotalBytes:          total,
		Classes:             sampleClassStats(sample, baseline, sanity),
		WorkloadFingerprint: "bench-" + strings.ToLower(d.Name) + "-sample",
		Actual:              measureSplit(baseline),
	})
	if err != nil {
		return nil, err
	}
	plan := dec.Plan
	ws, err := core.XClusterBuild(d.Ref, core.BuildOptions{Plan: &plan})
	if err != nil {
		return nil, err
	}
	addRow("workload (planner)", ws)
	return rows, nil
}

// FormatAutoBudgetJSON renders the rows as the BENCH_autobudget.json
// artifact.
func FormatAutoBudgetJSON(rows []AutoBudgetRow) string {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// FormatAutoBudget renders the comparison as aligned text.
func FormatAutoBudget(rows []AutoBudgetRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Budget allocation (one unified budget; held-out workload error)\n")
	fmt.Fprintf(&sb, "%-8s %-22s %-10s %10s %10s %12s\n",
		"Dataset", "split", "provenance", "Bstr(B)", "Bval(B)", "overall err")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-22s %-10s %10d %10d %11.1f%%\n",
			r.Dataset, r.Split, r.Provenance, r.Bstr, r.Bval, r.Overall*100)
	}
	return sb.String()
}
