package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"xcluster/internal/obs"
	"xcluster/internal/query"
	"xcluster/internal/service"
)

// obsRounds is how many interleaved timing rounds each configuration
// gets; the row keeps the best round, which is robust against GC pauses
// and scheduler noise that a single long pass folds into the mean.
const obsRounds = 5

// ObsRow is one dataset of the observability-overhead experiment: the
// per-estimate cost of the serving hot path with telemetry disabled,
// with telemetry enabled but the request sampled out (no span in the
// context — the cost every untraced request pays), and with a root span
// recorded per call (the fully traced cost).
type ObsRow struct {
	Dataset string `json:"dataset"`
	// Queries is the workload size; Iters the number of timed estimates
	// per round (each configuration runs obsRounds interleaved rounds
	// and reports its best).
	Queries int `json:"queries"`
	Iters   int `json:"iters"`
	Rounds  int `json:"rounds"`
	// BaseNsPerOp is the prepared hot path (result cache off, plan cache
	// warm) with the trace store disabled and no SLO configured.
	BaseNsPerOp     float64 `json:"base_ns_per_op"`
	BaseAllocsPerOp float64 `json:"base_allocs_per_op"`
	// OffNsPerOp is the same path with the trace store and SLO tracking
	// enabled but no span in the context: the request is sampled out, so
	// the only tracing cost is one context lookup per estimate.
	OffNsPerOp     float64 `json:"off_ns_per_op"`
	OffAllocsPerOp float64 `json:"off_allocs_per_op"`
	// OnNsPerOp creates, finishes, and records a root span per estimate:
	// the worst-case fully traced cost.
	OnNsPerOp     float64 `json:"on_ns_per_op"`
	OnAllocsPerOp float64 `json:"on_allocs_per_op"`
	// OverheadOffPct and OverheadOnPct are the relative slowdowns of the
	// off and on configurations over the base, in percent. The design
	// target pinned by BENCH_obs.json is OverheadOffPct < 10: telemetry
	// must be effectively free for requests that are not traced.
	OverheadOffPct float64 `json:"overhead_off_pct"`
	OverheadOnPct  float64 `json:"overhead_on_pct"`
	// Mismatches counts estimates that differed between configurations
	// (must be 0; telemetry must never change answers).
	Mismatches int `json:"mismatches"`
}

// obsMeasure times iters calls of f and returns ns/op and allocs/op.
// Allocation counts come from the runtime's exact heap-allocation event
// counter, so they are deterministic for a single-goroutine loop.
func obsMeasure(iters int, f func(i int)) (nsPerOp, allocsPerOp float64) {
	a0 := obs.HeapAllocObjects()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		f(i)
	}
	elapsed := time.Since(t0)
	allocs := obs.HeapAllocObjects() - a0
	return float64(elapsed.Nanoseconds()) / float64(iters), float64(allocs) / float64(iters)
}

// ObsExperiment measures observability overhead on one dataset's
// prepared serving hot path (result cache off so every call executes,
// plan cache warmed so no call compiles). iters is the number of timed
// estimates per round and configuration (0 means 2000); configurations
// run in interleaved rounds and report their best round, so a GC pause
// or scheduler hiccup in one round cannot masquerade as overhead.
func ObsExperiment(d *Dataset, cfg Config, iters int) (ObsRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
	if err != nil {
		return ObsRow{}, err
	}
	qs := make([]*query.Query, 0, len(d.Workload.Queries))
	for i := range d.Workload.Queries {
		qs = append(qs, d.Workload.Queries[i].Q)
	}
	if len(qs) == 0 {
		return ObsRow{}, fmt.Errorf("harness: dataset %s has an empty workload", d.Name)
	}
	ctx := context.Background()

	// Base: telemetry off — nil trace store, no SLO.
	base := service.New(syn,
		service.WithCacheCapacity(-1),
		service.WithTraceStore(nil),
	)
	defer base.Close()
	// Telemetry on: default trace store plus SLO tracking, the full
	// serving configuration. The off and on measurements share it; only
	// the presence of a span in the context differs.
	inst := service.New(syn,
		service.WithCacheCapacity(-1),
		service.WithSLO(obs.SLOConfig{Availability: 0.999, LatencyObjective: 50 * time.Millisecond}),
	)
	defer inst.Close()

	// Warm both plan caches and cross-check answers once.
	want := make([]float64, len(qs))
	mismatches := 0
	for i, q := range qs {
		if want[i], err = base.Estimate(ctx, q); err != nil {
			return ObsRow{}, fmt.Errorf("harness: warm %s: %w", q, err)
		}
		got, err := inst.Estimate(ctx, q)
		if err != nil {
			return ObsRow{}, fmt.Errorf("harness: warm %s: %w", q, err)
		}
		if got != want[i] {
			mismatches++
		}
	}

	row := ObsRow{Dataset: d.Name, Queries: len(qs), Iters: iters, Rounds: obsRounds, Mismatches: mismatches}
	var sink float64
	store := inst.Traces()
	tctx := obs.WithRequestID(ctx, "bench")
	configs := []struct {
		f          func(i int)
		ns, allocs *float64
	}{
		{func(i int) {
			v, _ := base.Estimate(ctx, qs[i%len(qs)])
			sink += v
		}, &row.BaseNsPerOp, &row.BaseAllocsPerOp},
		{func(i int) {
			v, _ := inst.Estimate(ctx, qs[i%len(qs)])
			sink += v
		}, &row.OffNsPerOp, &row.OffAllocsPerOp},
		{func(i int) {
			sp := obs.NewSpan("bench", "bench")
			v, _ := inst.Estimate(obs.WithSpan(tctx, sp), qs[i%len(qs)])
			sp.Finish()
			store.Record(sp)
			sink += v
		}, &row.OnNsPerOp, &row.OnAllocsPerOp},
	}
	for r := 0; r < obsRounds; r++ {
		for _, c := range configs {
			runtime.GC()
			ns, allocs := obsMeasure(iters, c.f)
			if r == 0 || ns < *c.ns {
				*c.ns = ns
			}
			if r == 0 || allocs < *c.allocs {
				*c.allocs = allocs
			}
		}
	}
	_ = sink

	if row.BaseNsPerOp > 0 {
		row.OverheadOffPct = (row.OffNsPerOp - row.BaseNsPerOp) / row.BaseNsPerOp * 100
		row.OverheadOnPct = (row.OnNsPerOp - row.BaseNsPerOp) / row.BaseNsPerOp * 100
	}
	return row, nil
}

// FormatObsJSON renders the experiment rows as indented JSON (the
// machine-readable output of `xclusterbench -experiment obs`).
func FormatObsJSON(rows []ObsRow) string {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// FormatObs renders the experiment rows as aligned text.
func FormatObs(rows []ObsRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Observability Overhead (prepared hot path)\n")
	fmt.Fprintf(&sb, "%-8s %10s %12s %12s %10s %12s %10s\n",
		"", "Base ns/op", "Off ns/op", "Off ovh%", "On ns/op", "On ovh%", "allocs/op")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10.0f %12.0f %11.1f%% %10.0f %11.1f%% %10.1f\n",
			r.Dataset, r.BaseNsPerOp, r.OffNsPerOp, r.OverheadOffPct,
			r.OnNsPerOp, r.OverheadOnPct, r.OnAllocsPerOp)
	}
	return sb.String()
}
