package harness

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"

	"context"

	"xcluster/internal/profile"
	"xcluster/internal/query"
	"xcluster/internal/service"
)

// WorkloadProfRow is one dataset of the workload-profiler overhead
// experiment: the per-estimate cost of the prepared serving hot path
// with the profiler disabled versus enabled at its default capacity.
// The profiler sits on every estimate, so its steady-state cost (a
// read-locked map probe plus a handful of atomic adds once every shape
// is admitted) is the number this experiment prices.
type WorkloadProfRow struct {
	Dataset string `json:"dataset"`
	Queries int    `json:"queries"`
	Iters   int    `json:"iters"`
	Rounds  int    `json:"rounds"`
	// OffNsPerOp is the prepared hot path (result cache off, plan cache
	// warm, trace store nil) with workload profiling disabled.
	OffNsPerOp     float64 `json:"off_ns_per_op"`
	OffAllocsPerOp float64 `json:"off_allocs_per_op"`
	// OnNsPerOp is the same path with the default profiler recording
	// every estimate.
	OnNsPerOp     float64 `json:"on_ns_per_op"`
	OnAllocsPerOp float64 `json:"on_allocs_per_op"`
	// OverheadPct is the relative slowdown of profiling in percent. The
	// design target pinned by BENCH_workload.json is < 10.
	OverheadPct float64 `json:"overhead_pct"`
	// Mismatches counts estimates that differed between configurations
	// (must be 0; profiling must never change answers).
	Mismatches int `json:"mismatches"`
	// TrackedShapes is how many canonical shapes the profiler held after
	// the timed rounds; with a workload smaller than the table capacity
	// it must equal the number of distinct shapes, error-free.
	TrackedShapes int `json:"tracked_shapes"`
	// RoundTripOK reports that the profiler's exported artifact parsed,
	// verified its fingerprint, and re-encoded to the same profile.
	RoundTripOK bool `json:"round_trip_ok"`
	// Fingerprint is the content hash of the captured profile, the same
	// value a rebuild would stamp on its SwapEvent.
	Fingerprint string `json:"fingerprint"`
}

// WorkloadProfExperiment measures workload-profiler overhead on one
// dataset's prepared serving hot path. iters is the number of timed
// estimates per round and configuration (0 means 2000); the off and on
// configurations run in interleaved best-of rounds like ObsExperiment,
// so a GC pause in one round cannot masquerade as profiler cost.
func WorkloadProfExperiment(d *Dataset, cfg Config, iters int) (WorkloadProfRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
	if err != nil {
		return WorkloadProfRow{}, err
	}
	qs := make([]*query.Query, 0, len(d.Workload.Queries))
	for i := range d.Workload.Queries {
		qs = append(qs, d.Workload.Queries[i].Q)
	}
	if len(qs) == 0 {
		return WorkloadProfRow{}, fmt.Errorf("harness: dataset %s has an empty workload", d.Name)
	}
	ctx := context.Background()

	// Off: profiling disabled; everything else identical to the on
	// configuration so the delta isolates the profiler itself.
	off := service.New(syn,
		service.WithCacheCapacity(-1),
		service.WithTraceStore(nil),
		service.WithWorkloadProfile(-1, 0),
	)
	defer off.Close()
	on := service.New(syn,
		service.WithCacheCapacity(-1),
		service.WithTraceStore(nil),
	)
	defer on.Close()

	// Warm both plan caches, admit every shape, and cross-check answers.
	mismatches := 0
	for _, q := range qs {
		want, err := off.Estimate(ctx, q)
		if err != nil {
			return WorkloadProfRow{}, fmt.Errorf("harness: warm %s: %w", q, err)
		}
		got, err := on.Estimate(ctx, q)
		if err != nil {
			return WorkloadProfRow{}, fmt.Errorf("harness: warm %s: %w", q, err)
		}
		if got != want {
			mismatches++
		}
	}

	row := WorkloadProfRow{Dataset: d.Name, Queries: len(qs), Iters: iters, Rounds: obsRounds, Mismatches: mismatches}
	var sink float64
	configs := []struct {
		f          func(i int)
		ns, allocs *float64
	}{
		{func(i int) {
			v, _ := off.Estimate(ctx, qs[i%len(qs)])
			sink += v
		}, &row.OffNsPerOp, &row.OffAllocsPerOp},
		{func(i int) {
			v, _ := on.Estimate(ctx, qs[i%len(qs)])
			sink += v
		}, &row.OnNsPerOp, &row.OnAllocsPerOp},
	}
	for r := 0; r < obsRounds; r++ {
		for _, c := range configs {
			runtime.GC()
			ns, allocs := obsMeasure(iters, c.f)
			if r == 0 || ns < *c.ns {
				*c.ns = ns
			}
			if r == 0 || allocs < *c.allocs {
				*c.allocs = allocs
			}
		}
	}
	_ = sink

	if row.OffNsPerOp > 0 {
		row.OverheadPct = (row.OnNsPerOp - row.OffNsPerOp) / row.OffNsPerOp * 100
	}

	// Capture the artifact the profiler built during the timed rounds
	// and prove the export contract end to end: encode, parse, verify
	// fingerprint, compare.
	art, err := on.WorkloadProfile()
	if err != nil {
		return WorkloadProfRow{}, err
	}
	row.TrackedShapes = len(art.Shapes)
	row.Fingerprint = art.Fingerprint
	data, err := profile.Encode(art)
	if err != nil {
		return WorkloadProfRow{}, err
	}
	parsed, err := profile.Parse(data)
	row.RoundTripOK = err == nil && reflect.DeepEqual(parsed, art)
	return row, nil
}

// FormatWorkloadProfJSON renders the experiment rows as indented JSON
// (the machine-readable output of `xclusterbench -experiment workload`).
func FormatWorkloadProfJSON(rows []WorkloadProfRow) string {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// FormatWorkloadProf renders the experiment rows as aligned text.
func FormatWorkloadProf(rows []WorkloadProfRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Workload Profiler Overhead (prepared hot path)\n")
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %10s %8s %10s\n",
		"", "Off ns/op", "On ns/op", "Overhead", "allocs/op", "shapes", "roundtrip")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10.0f %10.0f %9.1f%% %10.1f %8d %10v\n",
			r.Dataset, r.OffNsPerOp, r.OnNsPerOp, r.OverheadPct,
			r.OnAllocsPerOp, r.TrackedShapes, r.RoundTripOK)
	}
	return sb.String()
}
