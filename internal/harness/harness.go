// Package harness drives the experimental study of Section 6: it
// materializes the two data sets, builds reference synopses and
// workloads, sweeps XClusterBuild over structural budgets with a fixed
// value budget, and produces the rows of every table and figure in the
// paper (Tables 1-2, Figures 8a/8b/9), plus the negative-workload check
// reported in prose and the ablations called out in DESIGN.md.
package harness

import (
	"bytes"
	"fmt"
	"math"

	"xcluster/internal/core"
	"xcluster/internal/datagen"
	"xcluster/internal/vsum"
	"xcluster/internal/workload"
	"xcluster/internal/xmltree"
)

// Config scales the study. The zero value is upgraded to a laptop-scale
// run (a few seconds per budget point); Scale 16-20 approximates the
// paper's document sizes.
type Config struct {
	// Scale multiplies the generators' default entity counts.
	Scale float64
	// Seed drives data and workload generation.
	Seed int64
	// PerClass is the number of workload queries per class (Struct,
	// Numeric, String, Text).
	PerClass int
	// PSTDepth is the substring length retained by detailed PSTs.
	PSTDepth int
	// MaxSummaryBytes caps each detailed reference value summary,
	// matching the compact-but-detailed reference summaries of the
	// paper (its references average a few hundred bytes per value node).
	MaxSummaryBytes int
	// Points is the number of structural-budget points of the Figure 8
	// sweep (>= 2; the first is 0, the last is the full reference).
	Points int
	// ValueFrac sets the fixed value budget as a fraction of the
	// reference synopsis's value bytes (the paper fixes 150KB against
	// reference sizes of 473-890KB, roughly 1/3).
	ValueFrac float64
	// MaxStructFrac caps the Figure 8 sweep at this fraction of the
	// reference synopsis's structural bytes. The paper sweeps 0-50KB
	// against references of hundreds of KB — the low-budget regime where
	// structure is scarce; sweeping all the way to the full reference
	// instead starves the fixed value budget across thousands of
	// detailed summaries.
	MaxStructFrac float64
	// Metrics, when set, receives synopsis build-phase timings
	// (xcluster_build_phase_seconds) from every BuildAt call.
	Metrics core.MetricSink
}

// datasetDefaults holds the per-dataset budget balance. Mirroring the
// paper's methodology ("we have empirically verified that these settings
// provide a good balance between structural and value-based
// summarization for the two data sets"), the sweep range and fixed value
// fraction were tuned per data set: past these ranges the fixed value
// budget starves across the fine-grained clusters and all curves flatten
// or invert.
var datasetDefaults = map[string]struct {
	valueFrac     float64
	maxStructFrac float64
}{
	"IMDB":  {valueFrac: 1.0 / 3, maxStructFrac: 0.06},
	"XMark": {valueFrac: 0.6, maxStructFrac: 0.25},
}

// forDataset fills dataset-specific defaults for unset budget fields,
// then the global defaults.
func (c Config) forDataset(name string) Config {
	if d, ok := datasetDefaults[name]; ok {
		if c.ValueFrac == 0 {
			c.ValueFrac = d.valueFrac
		}
		if c.MaxStructFrac == 0 {
			c.MaxStructFrac = d.maxStructFrac
		}
	}
	return c.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.PerClass == 0 {
		c.PerClass = 50
	}
	if c.PSTDepth == 0 {
		c.PSTDepth = 5
	}
	if c.MaxSummaryBytes == 0 {
		// The per-summary detail cap must grow with the data (larger
		// clusters have richer distributions), but sub-linearly —
		// distinct values grow slower than occurrences.
		c.MaxSummaryBytes = int(2048 * math.Sqrt(math.Max(1, c.Scale)))
	}
	if c.Points == 0 {
		c.Points = 6
	}
	if c.ValueFrac == 0 {
		c.ValueFrac = 1.0 / 3
	}
	if c.MaxStructFrac == 0 {
		c.MaxStructFrac = 0.25
	}
	return c
}

// Dataset bundles a generated document with everything the experiments
// need: its reference synopsis, value paths, workloads, and sizes.
type Dataset struct {
	Name       string
	Tree       *xmltree.Tree
	ValuePaths []string
	Ref        *core.Synopsis
	Workload   *workload.Workload
	Negative   *workload.Workload
	XMLBytes   int
}

// NewDataset materializes one of the two named data sets ("IMDB" or
// "XMark") under the config.
func NewDataset(name string, cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	d := &Dataset{Name: name}
	switch name {
	case "IMDB":
		d.Tree = datagen.IMDB(datagen.IMDBConfig{Seed: cfg.Seed, Scale: cfg.Scale})
		d.ValuePaths = datagen.IMDBValuePaths()
	case "XMark":
		d.Tree = datagen.XMark(datagen.XMarkConfig{Seed: cfg.Seed, Scale: cfg.Scale})
		d.ValuePaths = datagen.XMarkValuePaths()
	default:
		return nil, fmt.Errorf("harness: unknown dataset %q", name)
	}
	var err error
	d.Ref, err = core.BuildReference(d.Tree, core.ReferenceOptions{
		ValuePaths: d.ValuePaths,
		Detail: vsum.BuildOptions{
			PSTDepth:        cfg.PSTDepth,
			MaxSummaryBytes: cfg.MaxSummaryBytes,
		},
	})
	if err != nil {
		return nil, err
	}
	d.Workload, err = workload.Generate(d.Tree, workload.Options{
		Seed: cfg.Seed + 1, PerClass: cfg.PerClass, ValuePaths: d.ValuePaths,
	})
	if err != nil {
		return nil, err
	}
	d.Negative, err = workload.Generate(d.Tree, workload.Options{
		Seed: cfg.Seed + 2, PerClass: cfg.PerClass / 2, ValuePaths: d.ValuePaths, Negative: true,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, d.Tree); err != nil {
		return nil, err
	}
	d.XMLBytes = buf.Len()
	return d, nil
}

// DatasetNames lists the study's data sets in report order.
func DatasetNames() []string { return []string{"IMDB", "XMark"} }

// ValueBudget returns the fixed Bval for the dataset under the config.
func (cfg Config) ValueBudget(d *Dataset) int {
	c := cfg.forDataset(d.Name)
	return int(float64(d.Ref.ValueBytes()) * c.ValueFrac)
}

// StructBudgets returns the Figure 8 sweep of Bstr values: Points values
// from 0 to MaxStructFrac of the reference structural size.
func (cfg Config) StructBudgets(d *Dataset) []int {
	c := cfg.forDataset(d.Name)
	out := make([]int, c.Points)
	limit := int(float64(d.Ref.StructBytes()) * c.MaxStructFrac)
	for i := range out {
		out[i] = limit * i / (c.Points - 1)
	}
	return out
}

// BuildAt compresses the dataset's reference synopsis to the given
// structural budget with the config's fixed value budget.
func (cfg Config) BuildAt(d *Dataset, structBudget int) (*core.Synopsis, error) {
	return core.XClusterBuild(d.Ref, core.BuildOptions{
		StructBudget: structBudget,
		ValueBudget:  cfg.ValueBudget(d),
		Metrics:      cfg.Metrics,
	})
}
