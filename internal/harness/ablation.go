package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/histogram"
	"xcluster/internal/pst"
	"xcluster/internal/query"
	"xcluster/internal/termhist"
	"xcluster/internal/vsum"
	"xcluster/internal/workload"
	"xcluster/internal/xmltree"
)

// The ablation experiments isolate the design choices DESIGN.md calls
// out: the end-biased term histogram versus conventional range-bucket
// histograms on term vectors (Section 3's argument), the pruning-error
// ordering of st_cmprs versus naive count ordering, the bottom-up level
// heuristic of build_pool, and the marginal-loss merge ordering versus
// random merging (the value of the Δ metric itself).

// AblationTermHistRow compares term-frequency estimation of the
// end-biased term histogram against a conventional equi-width bucket
// histogram at (approximately) equal storage.
type AblationTermHistRow struct {
	Budget        int
	EndBiasedErr  float64 // avg |true - est| frequency over present terms
	ConvErr       float64
	EndBiasedZero float64 // avg estimate for absent terms (should be 0)
	ConvZero      float64
}

// conventionalTermHist is the strawman of Section 3: consecutive term
// ids grouped into equi-width buckets, each storing the average
// frequency of all entries in its range — zero entries included, which
// is exactly how it "loses track of non-existent terms".
type conventionalTermHist struct {
	width int
	avg   []float64
}

func newConventional(freqs map[int]float64, dictLen, buckets int) *conventionalTermHist {
	if buckets < 1 {
		buckets = 1
	}
	width := (dictLen + buckets - 1) / buckets
	h := &conventionalTermHist{width: width, avg: make([]float64, buckets)}
	for t, f := range freqs {
		h.avg[t/width] += f
	}
	for i := range h.avg {
		h.avg[i] /= float64(width)
	}
	return h
}

func (h *conventionalTermHist) frequency(t int) float64 {
	b := t / h.width
	if b >= len(h.avg) {
		return 0
	}
	return h.avg[b]
}

// AblationTermHist evaluates both summaries on the centroid of one TEXT
// path's content at a range of budgets. Restricting to a single path
// leaves the rest of the dictionary as genuinely absent terms — the case
// the paper argues conventional bucket histograms mishandle (consecutive
// bucketing loses zero-valued entries).
func AblationTermHist(d *Dataset, budgets []int) []AblationTermHistRow {
	var textPath string
	for _, p := range d.ValuePaths {
		nodes := d.Tree.PathNodes(p)
		if len(nodes) > 0 && nodes[0].Type == xmltree.TypeText {
			textPath = p
			break
		}
	}
	var vectors [][]int
	d.Tree.Walk(func(n *xmltree.Node) {
		if n.Type == xmltree.TypeText && n.Path() == textPath {
			vectors = append(vectors, n.Terms)
		}
	})
	full := termhist.Build(vectors)
	dictLen := d.Tree.Dict.Len()

	// True frequencies.
	truth := make(map[int]float64)
	for _, t := range full.TopTerms() {
		truth[t] = full.Frequency(t)
	}

	var rows []AblationTermHistRow
	for _, budget := range budgets {
		// Compress the end-biased histogram to the budget.
		eb := full
		for eb.SizeBytes() > budget {
			next, n := eb.Compress(8)
			if n == 0 {
				break
			}
			eb = next
		}
		conv := newConventional(truth, dictLen, budget/8)

		row := AblationTermHistRow{Budget: budget}
		for t, f := range truth {
			row.EndBiasedErr += math.Abs(f - eb.Frequency(t))
			row.ConvErr += math.Abs(f - conv.frequency(t))
		}
		n := float64(len(truth))
		row.EndBiasedErr /= n
		row.ConvErr /= n
		// Absent terms: probe ids just past the dictionary plus unused
		// ids inside it.
		probes := 0
		for t := 0; t < dictLen; t++ {
			if _, present := truth[t]; !present {
				row.EndBiasedZero += eb.Frequency(t)
				row.ConvZero += conv.frequency(t)
				probes++
			}
		}
		if probes > 0 {
			row.EndBiasedZero /= float64(probes)
			row.ConvZero /= float64(probes)
		}
		rows = append(rows, row)
	}
	return rows
}

// AblationPSTRow compares the pruning-error leaf ordering of st_cmprs
// against naive lowest-count-first pruning at equal node counts.
type AblationPSTRow struct {
	PruneFrac  float64
	ByErrorErr float64 // avg |trueSel - est| over sampled substrings
	ByCountErr float64
	Nodes      int
}

// AblationPSTPruning builds a PST over the dataset's STRING content and
// prunes the given fractions of its nodes both ways.
func AblationPSTPruning(d *Dataset, fracs []float64, seed int64) []AblationPSTRow {
	var strs []string
	wanted := make(map[string]bool)
	for _, p := range d.ValuePaths {
		wanted[p] = true
	}
	d.Tree.Walk(func(n *xmltree.Node) {
		if n.Type == xmltree.TypeString && wanted[n.Path()] {
			strs = append(strs, n.Str)
		}
	})
	full := pst.Build(strs, 5)

	// Sample word-fragment query substrings and record exact answers.
	rng := rand.New(rand.NewSource(seed))
	type probe struct {
		qs  string
		sel float64
	}
	var probes []probe
	for i := 0; i < 200; i++ {
		s := strs[rng.Intn(len(strs))]
		words := strings.Fields(s)
		w := words[rng.Intn(len(words))]
		if len(w) < 2 {
			continue
		}
		n := 2 + rng.Intn(4)
		if n > len(w) {
			n = len(w)
		}
		start := rng.Intn(len(w) - n + 1)
		qs := w[start : start+n]
		cnt := 0
		for _, t := range strs {
			if strings.Contains(t, qs) {
				cnt++
			}
		}
		probes = append(probes, probe{qs: qs, sel: float64(cnt) / float64(len(strs))})
	}

	// Relative error with a one-string sanity floor: Markovian
	// overestimation of rare substrings — which the pruning-error order
	// is designed to avoid — registers here, where absolute error would
	// drown it under the frequent substrings.
	floor := 1 / float64(len(strs))
	truths := make([]float64, len(probes))
	for i, p := range probes {
		truths[i] = p.sel
	}
	score := func(t *pst.Tree) float64 {
		ests := make([]float64, len(probes))
		for i, p := range probes {
			ests[i] = t.Selectivity(p.qs)
		}
		return accuracy.Avg(truths, ests, floor)
	}

	var rows []AblationPSTRow
	for _, frac := range fracs {
		b := int(frac * float64(full.Nodes()))
		byErr := full.Clone()
		byErr.Prune(b)
		byCount := full.Clone()
		byCount.PruneLowestCount(b)
		rows = append(rows, AblationPSTRow{
			PruneFrac:  frac,
			ByErrorErr: score(byErr),
			ByCountErr: score(byCount),
			Nodes:      byErr.Nodes(),
		})
	}
	return rows
}

// AblationNumericRow compares the three NUMERIC summarization tools the
// paper cites — histograms (its primary choice), Haar wavelets, and
// random samples — at equal storage, on range-query estimation.
type AblationNumericRow struct {
	Budget    int
	Histogram float64 // avg relative range-selectivity error (equi-depth)
	MaxDiff   float64 // MaxDiff(V,F) boundary placement
	Wavelet   float64
	Sample    float64
}

// AblationNumericSummaries gathers the numeric values of the dataset's
// first NUMERIC value path and scores each summary kind at each budget
// over sampled range queries.
func AblationNumericSummaries(d *Dataset, budgets []int, seed int64) []AblationNumericRow {
	var values []int
	for _, p := range d.ValuePaths {
		nodes := d.Tree.PathNodes(p)
		if len(nodes) > 0 && nodes[0].Type == xmltree.TypeNumeric {
			for _, n := range nodes {
				values = append(values, n.Num)
			}
			break
		}
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = min(lo, v), max(hi, v)
	}
	rng := rand.New(rand.NewSource(seed))
	type probe struct {
		lo, hi int
		sel    float64
	}
	var probes []probe
	for i := 0; i < 200; i++ {
		a := lo + rng.Intn(hi-lo+1)
		b := a + rng.Intn((hi-lo)/4+1)
		cnt := 0
		for _, v := range values {
			if v >= a && v <= b {
				cnt++
			}
		}
		probes = append(probes, probe{lo: a, hi: b, sel: float64(cnt) / float64(len(values))})
	}
	floor := 1 / float64(len(values))
	truths := make([]float64, len(probes))
	for i, p := range probes {
		truths[i] = p.sel
	}
	score := func(sel func(lo, hi int) float64) float64 {
		ests := make([]float64, len(probes))
		for i, p := range probes {
			ests[i] = sel(p.lo, p.hi)
		}
		return accuracy.Avg(truths, ests, floor)
	}
	fit := func(s vsum.Summary, budget int) vsum.Summary {
		for s.SizeBytes() > budget {
			next, _, steps := s.Compress(4)
			if steps == 0 {
				break
			}
			s = next
		}
		return s
	}
	var rows []AblationNumericRow
	for _, budget := range budgets {
		h := fit(vsum.NewNumeric(values, 0), budget)
		md := histogram.BuildMaxDiff(values, budget/histogram.BucketBytes)
		wv := fit(vsum.NewNumericWavelet(values, 0), budget)
		sm := fit(vsum.NewNumericSample(values, 0, seed), budget)
		rows = append(rows, AblationNumericRow{
			Budget:    budget,
			Histogram: score(func(lo, hi int) float64 { return h.PredSel(query.Range{Lo: lo, Hi: hi}, nil) }),
			MaxDiff:   score(md.Selectivity),
			Wavelet:   score(func(lo, hi int) float64 { return wv.PredSel(query.Range{Lo: lo, Hi: hi}, nil) }),
			Sample:    score(func(lo, hi int) float64 { return sm.PredSel(query.Range{Lo: lo, Hi: hi}, nil) }),
		})
	}
	return rows
}

// AblationBuildRow compares construction policies at one structural
// budget: the full algorithm, the algorithm without the level heuristic,
// and random merging (no Δ metric).
type AblationBuildRow struct {
	Policy    string
	BuildSecs float64
	Overall   float64
	// Struct isolates structure-only queries: the slice on which the
	// paper compares its localized Δ with the global TreeSketch metric
	// (the global metric ignores value distributions, so it can only
	// compete there).
	Struct float64
}

// AblationBuild runs the three policies at a mid-sweep budget.
func AblationBuild(d *Dataset, cfg Config) ([]AblationBuildRow, error) {
	budgets := cfg.StructBudgets(d)
	bstr := budgets[len(budgets)/2]
	bval := cfg.ValueBudget(d)
	policies := []struct {
		name string
		opts core.BuildOptions
	}{
		{"localized Δ + levels", core.BuildOptions{StructBudget: bstr, ValueBudget: bval}},
		{"localized Δ, no levels", core.BuildOptions{StructBudget: bstr, ValueBudget: bval, NoLevelHeuristic: true}},
		{"global (TreeSketch) metric", core.BuildOptions{StructBudget: bstr, ValueBudget: bval, GlobalMetric: true}},
		{"random merges", core.BuildOptions{StructBudget: bstr, ValueBudget: bval, RandomMerges: true, RandomSeed: 1}},
	}
	var rows []AblationBuildRow
	for _, p := range policies {
		t0 := time.Now()
		s, err := core.XClusterBuild(d.Ref, p.opts)
		if err != nil {
			return nil, err
		}
		secs := time.Since(t0).Seconds()
		est := core.NewEstimator(s)
		rep := d.Workload.Evaluate(est.Selectivity)
		rows = append(rows, AblationBuildRow{
			Policy: p.name, BuildSecs: secs,
			Overall: rep.Overall, Struct: rep.ByClass[workload.Struct],
		})
	}
	return rows, nil
}

// FormatNumericAblation renders the numeric-summary comparison.
func FormatNumericAblation(rows []AblationNumericRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: NUMERIC summary tools (avg rel. range-selectivity error)\n")
	fmt.Fprintf(&sb, "%10s %12s %12s %12s %12s\n", "budget(B)", "equi-depth", "maxdiff", "wavelet", "sample")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %12.4f %12.4f %12.4f %12.4f\n", r.Budget, r.Histogram, r.MaxDiff, r.Wavelet, r.Sample)
	}
	return sb.String()
}

// FormatAblations renders all ablation results.
func FormatAblations(th []AblationTermHistRow, ps []AblationPSTRow, bd []AblationBuildRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: end-biased term histogram vs conventional bucket histogram\n")
	fmt.Fprintf(&sb, "%10s %14s %14s %16s %16s\n", "budget(B)", "end-biased err", "conventional", "eb absent-freq", "conv absent-freq")
	for _, r := range th {
		fmt.Fprintf(&sb, "%10d %14.4f %14.4f %16.4f %16.4f\n",
			r.Budget, r.EndBiasedErr, r.ConvErr, r.EndBiasedZero, r.ConvZero)
	}
	fmt.Fprintf(&sb, "\nAblation: PST pruning order (avg abs selectivity error)\n")
	fmt.Fprintf(&sb, "%10s %14s %14s %10s\n", "pruned", "pruning-error", "lowest-count", "nodes")
	for _, r := range ps {
		fmt.Fprintf(&sb, "%9.0f%% %14.4f %14.4f %10d\n", r.PruneFrac*100, r.ByErrorErr, r.ByCountErr, r.Nodes)
	}
	fmt.Fprintf(&sb, "\nAblation: construction policy (mid-sweep budget)\n")
	fmt.Fprintf(&sb, "%-28s %10s %12s %12s\n", "policy", "build(s)", "overall err", "struct err")
	for _, r := range bd {
		fmt.Fprintf(&sb, "%-28s %10.2f %11.1f%% %11.1f%%\n", r.Policy, r.BuildSecs, r.Overall*100, r.Struct*100)
	}
	return sb.String()
}
