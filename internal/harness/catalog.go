package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"xcluster/internal/catalog"
	"xcluster/internal/core"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// CatalogRow is one dataset of the scatter-gather experiment: the cost
// of estimating a workload across a sharded corpus through the catalog
// versus against one shard directly, with the routing spread of the
// tenant's consistent-hash ring.
type CatalogRow struct {
	Dataset string `json:"dataset"`
	// Shards is the number of collections the tenant's corpus is split
	// into; Queries the batch size of each scatter call.
	Shards  int `json:"shards"`
	Queries int `json:"queries"`
	Workers int `json:"workers"`
	Iters   int `json:"iters"`
	// DirectNsPerQuery is the per-query cost of a plain EstimateBatch
	// against a single shard's service; ScatterNsPerQuery the per-query
	// cost of the same batch scattered across all shards and gathered.
	DirectNsPerQuery  float64 `json:"direct_ns_per_query"`
	ScatterNsPerQuery float64 `json:"scatter_ns_per_query"`
	// ScatterQPS is aggregate estimated queries per second through the
	// scatter path (Iters * Queries / elapsed).
	ScatterQPS float64 `json:"scatter_qps"`
	// Partial counts scatter calls that returned with missing shards
	// (must be 0 on a healthy catalog; reported so the JSON is
	// self-checking), and Mismatches scatter aggregates that differed
	// bit-for-bit from the sequential per-shard sum (must be 0).
	Partial    int `json:"partial"`
	Mismatches int `json:"mismatches"`
	// RouteSpread is the max/min collection share over a synthetic
	// document-key population on the tenant's ring (1.0 = perfectly
	// even; the ring's virtual nodes keep this small).
	RouteSpread float64 `json:"route_spread"`
	// Metrics is the catalog registry snapshot (scatter outcome and
	// per-shard failure counters), keyed by Prometheus series name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// catalogExperimentShards is the number of collections the experiment
// splits the tenant's corpus into.
const catalogExperimentShards = 4

// CatalogExperiment measures multi-shard serving on one dataset: it
// attaches the dataset's synopsis as several collections of one tenant,
// scatters the positive workload across them on the catalog's bounded
// worker pool, cross-checks every aggregate bit-for-bit against the
// sequential per-shard sum, and reports per-query costs next to the
// single-shard direct path. workers bounds the scatter pool (0: the
// catalog default) and iters is the number of scatter calls (0: 200).
func CatalogExperiment(d *Dataset, cfg Config, workers, iters int) (CatalogRow, error) {
	if iters <= 0 {
		iters = 200
	}
	syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
	if err != nil {
		return CatalogRow{}, err
	}
	cat, err := catalog.New(catalog.Config{
		Loader: func(ctx context.Context, spec catalog.ShardSpec) (*core.Synopsis, *xmltree.Tree, error) {
			return syn, nil, nil
		},
		ScatterWorkers: workers,
	})
	if err != nil {
		return CatalogRow{}, err
	}
	ctx := context.Background()
	defer cat.DrainAll(ctx) //nolint:errcheck // experiment teardown

	const tenant = "bench"
	collections := make([]string, catalogExperimentShards)
	for i := range collections {
		collections[i] = fmt.Sprintf("s%d", i)
		if _, err := cat.Attach(ctx, catalog.ShardSpec{
			Tenant: tenant, Collection: collections[i],
			Synopsis: fmt.Sprintf("mem:%s/%s", d.Name, collections[i]),
		}); err != nil {
			return CatalogRow{}, err
		}
	}

	qs := make([]*query.Query, 0, len(d.Workload.Queries))
	for i := range d.Workload.Queries {
		qs = append(qs, d.Workload.Queries[i].Q)
	}
	if len(qs) == 0 {
		return CatalogRow{}, fmt.Errorf("harness: dataset %s has an empty workload", d.Name)
	}

	// Ground truth: per-shard batches summed in sorted collection order,
	// the same order the gather path uses, so aggregates must match
	// bit-for-bit (float addition is order-sensitive).
	want := make([]float64, len(qs))
	for _, coll := range collections {
		sh, err := cat.Shard(tenant, coll)
		if err != nil {
			return CatalogRow{}, err
		}
		vals, err := sh.Service().EstimateBatch(ctx, qs)
		if err != nil {
			return CatalogRow{}, err
		}
		for i, v := range vals {
			want[i] += v
		}
	}
	res, err := cat.ScatterEstimate(ctx, tenant, qs)
	if err != nil {
		return CatalogRow{}, err
	}
	mismatches := 0
	for i := range qs {
		if res.Selectivities[i] != want[i] {
			mismatches++
		}
	}

	// Direct baseline: one shard answering the batch without fan-out.
	first, err := cat.Shard(tenant, collections[0])
	if err != nil {
		return CatalogRow{}, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := first.Service().EstimateBatch(ctx, qs); err != nil {
			return CatalogRow{}, err
		}
	}
	directElapsed := time.Since(t0)

	// Scatter path under load.
	partial := 0
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		r, err := cat.ScatterEstimate(ctx, tenant, qs)
		if err != nil {
			return CatalogRow{}, err
		}
		if !r.Complete() {
			partial++
		}
	}
	scatterElapsed := time.Since(t0)

	// Routing spread of a synthetic document-key population.
	counts := make(map[string]int, len(collections))
	const routeKeys = 2000
	for i := 0; i < routeKeys; i++ {
		k, err := cat.RouteDocument(tenant, fmt.Sprintf("doc-%05d", i))
		if err != nil {
			return CatalogRow{}, err
		}
		counts[k.Collection]++
	}
	minC, maxC := routeKeys, 0
	for _, coll := range collections {
		if counts[coll] < minC {
			minC = counts[coll]
		}
		if counts[coll] > maxC {
			maxC = counts[coll]
		}
	}
	spread := 0.0
	if minC > 0 {
		spread = float64(maxC) / float64(minC)
	}

	ops := float64(iters * len(qs))
	row := CatalogRow{
		Dataset:           d.Name,
		Shards:            len(collections),
		Queries:           len(qs),
		Workers:           workers,
		Iters:             iters,
		DirectNsPerQuery:  float64(directElapsed.Nanoseconds()) / ops,
		ScatterNsPerQuery: float64(scatterElapsed.Nanoseconds()) / ops,
		Partial:           partial,
		Mismatches:        mismatches,
		RouteSpread:       spread,
		Metrics:           cat.Registry().Snapshot(),
	}
	if s := scatterElapsed.Seconds(); s > 0 {
		row.ScatterQPS = ops / s
	}
	return row, nil
}

// FormatCatalogJSON renders the experiment rows as indented JSON (the
// machine-readable output of `xclusterbench -experiment catalog`).
func FormatCatalogJSON(rows []CatalogRow) string {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// FormatCatalog renders the experiment rows as aligned text.
func FormatCatalog(rows []CatalogRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Catalog Scatter-Gather (%d shards per tenant)\n", catalogExperimentShards)
	fmt.Fprintf(&sb, "%-8s %8s %13s %14s %12s %8s %8s %7s\n",
		"", "Queries", "Direct ns/q", "Scatter ns/q", "Scatter q/s", "Partial", "Mismatch", "Spread")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %8d %13.0f %14.0f %12.0f %8d %8d %7.2f\n",
			r.Dataset, r.Queries, r.DirectNsPerQuery, r.ScatterNsPerQuery, r.ScatterQPS, r.Partial, r.Mismatches, r.RouteSpread)
	}
	return sb.String()
}
