package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"xcluster/internal/core"
)

// BuildVariant is one configuration of the build experiment.
type BuildVariant struct {
	Name string `json:"name"`
	// Workers is the resolved Δ-evaluation worker count; Memo reports
	// whether the pair-Δ memo table was enabled.
	Workers int  `json:"workers"`
	Memo    bool `json:"memo"`
	// Per-phase and total build wall times.
	MergeSeconds float64 `json:"merge_seconds"`
	ValueSeconds float64 `json:"value_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
	// Work counters from core.BuildStats.
	Merges          int64   `json:"merges"`
	PairsEvaluated  int64   `json:"pairs_evaluated"`
	MemoHits        int64   `json:"memo_hits"`
	MemoPartialHits int64   `json:"memo_partial_hits"`
	MemoHitRate     float64 `json:"memo_hit_rate"`
	PoolBuilds      int64   `json:"pool_builds"`
}

// BuildRow is one dataset of the build experiment: the same compression
// run under every engine configuration, with the serial unmemoized
// build as the baseline.
type BuildRow struct {
	Dataset string `json:"dataset"`
	// Elements is the document size, RefNodes the reference synopsis
	// size the merge phase starts from.
	Elements int `json:"elements"`
	RefNodes int `json:"ref_nodes"`
	// StructBudget/ValueBudget are the compression targets.
	StructBudget int `json:"struct_budget"`
	ValueBudget  int `json:"value_budget"`
	// Variants holds the per-configuration timings; the first entry is
	// the serial baseline.
	Variants []BuildVariant `json:"variants"`
	// MergeSpeedup and TotalSpeedup compare the serial baseline against
	// the full configuration (workers + memo), merge phase and
	// end-to-end respectively.
	MergeSpeedup float64 `json:"merge_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`
	// Identical reports that every variant produced bit-for-bit the same
	// synopsis (compared through the codec with build timestamps
	// normalized). Anything but true is a bug.
	Identical bool `json:"identical"`
}

// buildVariantSpecs returns the experiment grid. workers <= 0 resolves
// to GOMAXPROCS. The serial baseline (one worker, no memo) matches the
// engine before parallel + incremental construction landed.
func buildVariantSpecs(workers int) []struct {
	name    string
	workers int
	memo    bool
} {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return []struct {
		name    string
		workers int
		memo    bool
	}{
		{"serial", 1, false},
		{"parallel", workers, false},
		{"memo", 1, true},
		{"parallel+memo", workers, true},
	}
}

// BuildExperiment times synopsis construction on one dataset across the
// engine configurations (serial, parallel, memoized, both), verifying
// that every configuration produces bit-for-bit the same synopsis.
// workers <= 0 uses GOMAXPROCS; the struct budget is the prepared
// experiment's Bstr (reference/20) so numbers line up across reports.
func BuildExperiment(d *Dataset, cfg Config, workers int) (BuildRow, error) {
	cfg = cfg.forDataset(d.Name)
	row := BuildRow{
		Dataset:      d.Name,
		Elements:     d.Tree.Len(),
		RefNodes:     d.Ref.NumNodes(),
		StructBudget: d.Ref.StructBytes() / 20,
		ValueBudget:  cfg.ValueBudget(d),
		Identical:    true,
	}
	var baseline []byte
	for _, spec := range buildVariantSpecs(workers) {
		var stats core.BuildStats
		syn, err := core.XClusterBuild(d.Ref, core.BuildOptions{
			StructBudget: row.StructBudget,
			ValueBudget:  row.ValueBudget,
			Workers:      spec.workers,
			NoDeltaMemo:  !spec.memo,
			Stats:        &stats,
		})
		if err != nil {
			return BuildRow{}, fmt.Errorf("harness: build %s/%s: %w", d.Name, spec.name, err)
		}
		row.Variants = append(row.Variants, BuildVariant{
			Name:            spec.name,
			Workers:         stats.Workers,
			Memo:            spec.memo,
			MergeSeconds:    stats.MergeSeconds,
			ValueSeconds:    stats.ValueSeconds,
			TotalSeconds:    stats.MergeSeconds + stats.ValueSeconds,
			Merges:          stats.Merges,
			PairsEvaluated:  stats.PairsEvaluated,
			MemoHits:        stats.MemoHits,
			MemoPartialHits: stats.MemoPartialHits,
			MemoHitRate:     stats.MemoHitRate(),
			PoolBuilds:      stats.PoolBuilds,
		})
		// Bit-for-bit identity through the codec, with the wall-clock
		// fingerprint fields normalized away.
		fp := syn.Fingerprint()
		fp.BuiltAtUnix, fp.BuildNanos = 0, 0
		syn.SetFingerprint(fp)
		var buf bytes.Buffer
		if _, err := syn.WriteTo(&buf); err != nil {
			return BuildRow{}, fmt.Errorf("harness: encode %s/%s: %w", d.Name, spec.name, err)
		}
		if baseline == nil {
			baseline = buf.Bytes()
		} else if !bytes.Equal(buf.Bytes(), baseline) {
			row.Identical = false
		}
	}
	serial, full := row.Variants[0], row.Variants[len(row.Variants)-1]
	if full.MergeSeconds > 0 {
		row.MergeSpeedup = serial.MergeSeconds / full.MergeSeconds
	}
	if full.TotalSeconds > 0 {
		row.TotalSpeedup = serial.TotalSeconds / full.TotalSeconds
	}
	return row, nil
}

// FormatBuildJSON renders the experiment rows as indented JSON (the
// machine-readable output of `xclusterbench -experiment build`,
// i.e. BENCH_build.json).
func FormatBuildJSON(rows []BuildRow) string {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// FormatBuild renders the experiment rows as aligned text.
func FormatBuild(rows []BuildRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Synopsis Construction (serial vs parallel vs memoized)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s: %d elements, %d reference nodes -> Bstr=%d Bval=%d (identical=%v)\n",
			r.Dataset, r.Elements, r.RefNodes, r.StructBudget, r.ValueBudget, r.Identical)
		fmt.Fprintf(&sb, "  %-14s %7s %10s %10s %12s %10s %8s\n",
			"variant", "workers", "merge(s)", "total(s)", "pairs", "memo hits", "hit rate")
		for _, v := range r.Variants {
			fmt.Fprintf(&sb, "  %-14s %7d %10.3f %10.3f %12d %10d %7.1f%%\n",
				v.Name, v.Workers, v.MergeSeconds, v.TotalSeconds,
				v.PairsEvaluated, v.MemoHits, 100*v.MemoHitRate)
		}
		fmt.Fprintf(&sb, "  merge speedup %.1fx, total %.1fx\n", r.MergeSpeedup, r.TotalSpeedup)
	}
	return sb.String()
}
