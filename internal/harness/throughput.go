package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xcluster/internal/core"
	"xcluster/internal/query"
)

// ThroughputRow is one serving configuration of the throughput
// experiment: estimation queries per second through one shared estimator.
type ThroughputRow struct {
	Dataset string
	// Mode is "sequential" or "parallel"; Cached reports whether the
	// query-result cache was enabled.
	Mode    string
	Cached  bool
	Workers int
	Queries int
	QPS     float64
	// HitRate is the cache hit rate observed during the run (0 when the
	// cache is disabled).
	HitRate float64
}

// ThroughputExperiment measures the serving throughput of one shared
// estimator over the dataset's positive workload in four configurations:
// sequential and parallel (workers goroutines), each cold (cache off)
// and cached. It quantifies the two concurrency claims of the estimator
// redesign: parallel clients scale past the sequential rate, and the
// result cache multiplies the steady-state rate of a repeating workload.
func ThroughputExperiment(d *Dataset, cfg Config, workers, iters int) ([]ThroughputRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if iters <= 0 {
		iters = 4000
	}
	syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
	if err != nil {
		return nil, err
	}
	qs := make([]*query.Query, 0, len(d.Workload.Queries))
	for i := range d.Workload.Queries {
		qs = append(qs, d.Workload.Queries[i].Q)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("harness: dataset %s has an empty workload", d.Name)
	}

	var rows []ThroughputRow
	for _, mode := range []struct {
		name    string
		cached  bool
		workers int
	}{
		{"sequential", false, 1},
		{"sequential", true, 1},
		{"parallel", false, workers},
		{"parallel", true, workers},
	} {
		est := core.NewEstimator(syn)
		if !mode.cached {
			est.SetCacheCapacity(0)
		}
		elapsed := hammer(est, qs, mode.workers, iters)
		row := ThroughputRow{
			Dataset: d.Name,
			Mode:    mode.name,
			Cached:  mode.cached,
			Workers: mode.workers,
			Queries: iters,
			QPS:     float64(iters) / elapsed.Seconds(),
			HitRate: est.CacheStats().HitRate(),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// hammer runs iters estimates against the shared estimator from the
// given number of goroutines and returns the wall-clock time.
func hammer(est *core.Estimator, qs []*query.Query, workers, iters int) time.Duration {
	t0 := time.Now()
	if workers <= 1 {
		for i := 0; i < iters; i++ {
			est.Selectivity(qs[i%len(qs)])
		}
		return time.Since(t0)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= iters {
					return
				}
				est.Selectivity(qs[i%len(qs)])
			}
		}()
	}
	wg.Wait()
	return time.Since(t0)
}

// FormatThroughput renders throughput rows as aligned text.
func FormatThroughput(rows []ThroughputRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Estimation Throughput (one shared estimator)\n")
	fmt.Fprintf(&sb, "%-8s %-12s %-8s %8s %10s %12s %9s\n",
		"", "Mode", "Cache", "Workers", "Queries", "QPS", "Hit Rate")
	for _, r := range rows {
		cache := "off"
		if r.Cached {
			cache = "on"
		}
		fmt.Fprintf(&sb, "%-8s %-12s %-8s %8d %10d %12.0f %8.0f%%\n",
			r.Dataset, r.Mode, cache, r.Workers, r.Queries, r.QPS, r.HitRate*100)
	}
	return sb.String()
}
