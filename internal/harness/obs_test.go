package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestObsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	cfg := smallCfg()
	d, err := NewDataset("IMDB", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Few iterations: the test checks the experiment's shape and answer
	// parity, not the timing precision the benchmark target needs.
	row, err := ObsExperiment(d, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if row.Dataset != "IMDB" || row.Queries == 0 || row.Iters != 50 || row.Rounds < 1 {
		t.Fatalf("row = %+v", row)
	}
	if row.Mismatches != 0 {
		t.Fatalf("instrumented service disagreed with baseline on %d answers", row.Mismatches)
	}
	for name, v := range map[string]float64{
		"base ns/op": row.BaseNsPerOp,
		"off ns/op":  row.OffNsPerOp,
		"on ns/op":   row.OnNsPerOp,
	} {
		if v <= 0 {
			t.Fatalf("%s = %g, want > 0", name, v)
		}
	}
	// Tracing-on pays for span assembly and recording; it must allocate
	// at least as much as the sampled-out path.
	if row.OnAllocsPerOp < row.OffAllocsPerOp {
		t.Fatalf("on allocs/op %g < off allocs/op %g", row.OnAllocsPerOp, row.OffAllocsPerOp)
	}

	rows := []ObsRow{row}
	var decoded []ObsRow
	if err := json.Unmarshal([]byte(FormatObsJSON(rows)), &decoded); err != nil {
		t.Fatalf("FormatObsJSON not valid JSON: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Dataset != "IMDB" {
		t.Fatalf("decoded = %+v", decoded)
	}
	text := FormatObs(rows)
	for _, want := range []string{"IMDB", "Off ns/op", "On ns/op"} {
		if !strings.Contains(text, want) {
			t.Fatalf("FormatObs missing %q:\n%s", want, text)
		}
	}
}
