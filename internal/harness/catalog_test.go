package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCatalogExperiment runs the scatter-gather experiment at small
// scale on one dataset and checks its self-validating invariants: no
// partial scatters, bit-for-bit aggregate agreement with the sequential
// per-shard sum, and a populated routing spread.
func TestCatalogExperiment(t *testing.T) {
	d, err := NewDataset("IMDB", smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	row, err := CatalogExperiment(d, smallCfg(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Shards != catalogExperimentShards {
		t.Fatalf("shards = %d, want %d", row.Shards, catalogExperimentShards)
	}
	if row.Mismatches != 0 {
		t.Fatalf("%d scatter aggregates differ from the sequential per-shard sum", row.Mismatches)
	}
	if row.Partial != 0 {
		t.Fatalf("%d scatter calls came back partial on a healthy catalog", row.Partial)
	}
	if row.Queries == 0 || row.ScatterNsPerQuery <= 0 || row.DirectNsPerQuery <= 0 {
		t.Fatalf("degenerate timings: %+v", row)
	}
	if row.RouteSpread < 1 {
		t.Fatalf("route spread %v: some collection received no documents", row.RouteSpread)
	}
	// Counters: the ground-truth call plus the timed loop all succeeded.
	if got := row.Metrics[`xcluster_catalog_scatter_total{outcome="ok"}`]; got != float64(1+row.Iters) {
		t.Fatalf("ok scatter counter = %v, want %d", got, 1+row.Iters)
	}
}

// TestCatalogFormats sanity-checks the two renderings.
func TestCatalogFormats(t *testing.T) {
	rows := []CatalogRow{{Dataset: "IMDB", Shards: 4, Queries: 40, Iters: 3, ScatterQPS: 1000, RouteSpread: 1.5}}
	txt := FormatCatalog(rows)
	if !strings.Contains(txt, "Scatter-Gather") || !strings.Contains(txt, "IMDB") {
		t.Fatalf("text rendering: %q", txt)
	}
	var back []CatalogRow
	if err := json.Unmarshal([]byte(FormatCatalogJSON(rows)), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Dataset != "IMDB" {
		t.Fatalf("JSON round trip: %+v", back)
	}
}
