package harness

import (
	"bytes"
	"testing"

	"xcluster/internal/core"
)

// stableBytes serializes a synopsis with the wall-clock fingerprint
// fields zeroed, so two builds of the same inputs compare byte-equal.
func stableBytes(t *testing.T, s *core.Synopsis) []byte {
	t.Helper()
	fp := s.Fingerprint()
	fp.BuiltAtUnix, fp.BuildNanos = 0, 0
	s.SetFingerprint(fp)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPlanDifferentialOnFixtures is the fixture-level half of the
// BudgetPlan compatibility contract: on both benchmark fixtures, the
// legacy StructBudget/ValueBudget ints and a plan synthesized from the
// same pair must build byte-identical synopses and return identical
// estimates for every workload query.
func TestPlanDifferentialOnFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("full fixture builds; skipped in -short")
	}
	cfg := smallCfg()
	for _, name := range DatasetNames() {
		t.Run(name, func(t *testing.T) {
			d, err := NewDataset(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dcfg := cfg.forDataset(name)
			budgets := dcfg.StructBudgets(d)
			bstr, bval := budgets[len(budgets)-1], dcfg.ValueBudget(d)

			legacy, err := core.XClusterBuild(d.Ref, core.BuildOptions{
				StructBudget: bstr, ValueBudget: bval,
			})
			if err != nil {
				t.Fatal(err)
			}
			plan := core.PlanFromBudgets(bstr, bval)
			planned, err := core.XClusterBuild(d.Ref, core.BuildOptions{Plan: &plan})
			if err != nil {
				t.Fatal(err)
			}

			le, pe := core.NewEstimator(legacy), core.NewEstimator(planned)
			for _, q := range d.Workload.Queries {
				if a, b := le.Selectivity(q.Q), pe.Selectivity(q.Q); a != b {
					t.Fatalf("estimate diverges on %s: %g vs %g", q.Q, a, b)
				}
			}
			a, b := stableBytes(t, legacy), stableBytes(t, planned)
			if !bytes.Equal(a, b) {
				t.Fatalf("legacy ints and synthesized plan serialized differently (%d vs %d bytes)", len(a), len(b))
			}
		})
	}
}
