package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBuildExperimentDifferential is the engine's differential gate: on
// both datasets, the serial, parallel, memoized, and parallel+memoized
// configurations must produce bit-for-bit the same synopsis (compared
// through the codec with build timestamps normalized). It runs in
// -short mode on purpose — ci.sh exercises it under -race, where the
// parallel variants' worker pools get their data-race audit.
func TestBuildExperimentDifferential(t *testing.T) {
	for _, name := range DatasetNames() {
		d, err := NewDataset(name, smallCfg())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		row, err := BuildExperiment(d, smallCfg(), 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !row.Identical {
			t.Fatalf("%s: variants diverged — parallel/memoized builds are not bit-for-bit serial", name)
		}
		if len(row.Variants) != 4 {
			t.Fatalf("%s: %d variants, want 4", name, len(row.Variants))
		}
		serial := row.Variants[0]
		if serial.Name != "serial" || serial.Workers != 1 || serial.Memo {
			t.Fatalf("%s: baseline variant %+v", name, serial)
		}
		if serial.MemoHits != 0 || serial.MemoPartialHits != 0 {
			t.Fatalf("%s: unmemoized baseline recorded memo hits: %+v", name, serial)
		}
		for _, v := range row.Variants {
			if v.Merges != serial.Merges {
				t.Fatalf("%s/%s: %d merges, serial applied %d", name, v.Name, v.Merges, serial.Merges)
			}
			if v.TotalSeconds <= 0 {
				t.Fatalf("%s/%s: no time recorded: %+v", name, v.Name, v)
			}
		}
		// The memoized engine may only do less evaluation work, never
		// more.
		memo := row.Variants[2]
		if memo.PairsEvaluated > serial.PairsEvaluated {
			t.Fatalf("%s: memoized build evaluated %d pairs, serial only %d",
				name, memo.PairsEvaluated, serial.PairsEvaluated)
		}
		if serial.PairsEvaluated > 0 && memo.MemoHits+memo.MemoPartialHits == 0 {
			t.Fatalf("%s: memo enabled but never hit (%d serial evals)", name, serial.PairsEvaluated)
		}
	}
}

// TestBuildFormats sanity-checks the two renderings of the experiment.
func TestBuildFormats(t *testing.T) {
	rows := []BuildRow{{
		Dataset: "IMDB", Elements: 10, RefNodes: 5,
		StructBudget: 100, ValueBudget: 200,
		Variants: []BuildVariant{
			{Name: "serial", Workers: 1, MergeSeconds: 2, TotalSeconds: 3},
			{Name: "parallel+memo", Workers: 8, MergeSeconds: 0.25, TotalSeconds: 0.5, MemoHits: 7, MemoHitRate: 0.5},
		},
		MergeSpeedup: 8, TotalSpeedup: 6, Identical: true,
	}}
	text := FormatBuild(rows)
	for _, want := range []string{"IMDB", "serial", "parallel+memo", "8.0x", "identical=true"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
	var back []BuildRow
	if err := json.Unmarshal([]byte(FormatBuildJSON(rows)), &back); err != nil {
		t.Fatalf("JSON rendering does not round-trip: %v", err)
	}
	if len(back) != 1 || back[0].MergeSpeedup != 8 || !back[0].Identical {
		t.Fatalf("round-tripped %+v", back)
	}
}
