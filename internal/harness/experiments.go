package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"xcluster/internal/core"
	"xcluster/internal/workload"
)

// Table1Row is one row of Table 1 (data set characteristics).
type Table1Row struct {
	Dataset    string
	FileMB     float64
	Elements   int
	RefKB      float64
	ValueNodes int
	TotalNodes int
}

// Table1 reproduces Table 1: file size, element count, reference-synopsis
// size, and node counts (value / total).
func Table1(d *Dataset) Table1Row {
	return Table1Row{
		Dataset:    d.Name,
		FileMB:     float64(d.XMLBytes) / (1 << 20),
		Elements:   d.Tree.Len(),
		RefKB:      float64(d.Ref.TotalBytes()) / 1024,
		ValueNodes: d.Ref.NumValueNodes(),
		TotalNodes: d.Ref.NumNodes(),
	}
}

// Table2Row is one row of Table 2 (workload characteristics).
type Table2Row struct {
	Dataset    string
	AvgStruct  float64 // avg result size, structure-only queries
	AvgPred    float64 // avg result size, predicate queries
	NumQueries int
}

// Table2 reproduces Table 2: average result sizes of the positive
// workload, split into structure-only and predicate queries.
func Table2(d *Dataset) Table2Row {
	var pred []workload.Query
	for _, c := range []workload.Class{workload.Numeric, workload.String, workload.Text} {
		pred = append(pred, d.Workload.ByClass(c)...)
	}
	return Table2Row{
		Dataset:    d.Name,
		AvgStruct:  workload.AvgTrue(d.Workload.ByClass(workload.Struct)),
		AvgPred:    workload.AvgTrue(pred),
		NumQueries: len(d.Workload.Queries),
	}
}

// Fig8Row is one point of a Figure 8 error curve.
type Fig8Row struct {
	StructBudget int
	TotalKB      float64 // actual synopsis size (struct + value)
	Overall      float64
	Numeric      float64
	String       float64
	Text         float64
	Struct       float64
}

// Figure8 reproduces one panel of Figure 8: average relative estimation
// error versus synopsis size, per predicate class, at the config's sweep
// of structural budgets with the fixed value budget. The whole panel
// shares one merge phase (core.XClusterSweep snapshots each budget
// crossing) and the per-budget workload evaluations run in parallel.
func Figure8(d *Dataset, cfg Config) ([]Fig8Row, error) {
	budgets := cfg.StructBudgets(d)
	syns, err := core.XClusterSweep(d.Ref, budgets, cfg.ValueBudget(d), core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, len(budgets))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(budgets) {
		workers = len(budgets)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := syns[i]
				est := core.NewEstimator(s)
				rep := d.Workload.Evaluate(est.Selectivity)
				rows[i] = Fig8Row{
					StructBudget: budgets[i],
					TotalKB:      float64(s.TotalBytes()) / 1024,
					Overall:      rep.Overall,
					Numeric:      rep.ByClass[workload.Numeric],
					String:       rep.ByClass[workload.String],
					Text:         rep.ByClass[workload.Text],
					Struct:       rep.ByClass[workload.Struct],
				}
			}
		}()
	}
	for i := range budgets {
		next <- i
	}
	close(next)
	wg.Wait()
	return rows, nil
}

// Fig9Row is one cell of Figure 9: average absolute error for low-count
// queries of one class on one data set, at the largest synopsis.
type Fig9Row struct {
	Dataset string
	Class   workload.Class
	AbsErr  float64
	AvgTrue float64
	N       int
}

// Figure9 reproduces Figure 9: the average absolute error of low-count
// queries (true selectivity below the sanity bound) at the full
// structural budget, which explains the inflated relative errors of
// low-selectivity predicates.
func Figure9(d *Dataset, cfg Config) ([]Fig9Row, error) {
	budgets := cfg.StructBudgets(d)
	s, err := cfg.BuildAt(d, budgets[len(budgets)-1])
	if err != nil {
		return nil, err
	}
	est := core.NewEstimator(s)
	bound := d.Workload.SanityBound()
	var rows []Fig9Row
	for _, c := range []workload.Class{workload.Numeric, workload.String, workload.Text} {
		low := workload.LowCount(d.Workload.ByClass(c), bound)
		rows = append(rows, Fig9Row{
			Dataset: d.Name,
			Class:   c,
			AbsErr:  workload.AvgAbsError(low, est.Selectivity),
			AvgTrue: workload.AvgTrue(low),
			N:       len(low),
		})
	}
	return rows, nil
}

// NegativeRow summarizes the negative-workload experiment for one class.
type NegativeRow struct {
	Dataset string
	Class   workload.Class
	AvgEst  float64 // average estimate on zero-selectivity queries
	MaxEst  float64
	N       int
}

// NegativeExperiment verifies the prose claim of Section 6.1: XClusters
// consistently yield close-to-zero estimates for negative (zero
// selectivity) queries at any budget. It evaluates at the smallest
// structural budget, the hardest case.
func NegativeExperiment(d *Dataset, cfg Config) ([]NegativeRow, error) {
	s, err := cfg.BuildAt(d, 0)
	if err != nil {
		return nil, err
	}
	est := core.NewEstimator(s)
	var rows []NegativeRow
	for _, c := range []workload.Class{workload.Numeric, workload.String, workload.Text} {
		qs := d.Negative.ByClass(c)
		row := NegativeRow{Dataset: d.Name, Class: c, N: len(qs)}
		for _, q := range qs {
			e := est.Selectivity(q.Q)
			row.AvgEst += e
			if e > row.MaxEst {
				row.MaxEst = e
			}
		}
		if len(qs) > 0 {
			row.AvgEst /= float64(len(qs))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---- formatting ----

// FormatTable1 renders Table 1 rows as aligned text.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1. Data Set Characteristics\n")
	fmt.Fprintf(&sb, "%-8s %12s %12s %12s %20s\n", "", "File Size(MB)", "# Elements", "Ref. Size(KB)", "# Nodes: Value/Total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %13.2f %12d %13.1f %13d / %d\n",
			r.Dataset, r.FileMB, r.Elements, r.RefKB, r.ValueNodes, r.TotalNodes)
	}
	return sb.String()
}

// FormatTable2 renders Table 2 rows as aligned text.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2. Workload Characteristics (Avg. Result Size)\n")
	fmt.Fprintf(&sb, "%-8s %12s %12s %10s\n", "", "Struct", "Pred", "#Queries")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %12.0f %12.0f %10d\n", r.Dataset, r.AvgStruct, r.AvgPred, r.NumQueries)
	}
	return sb.String()
}

// FormatFigure8 renders a Figure 8 panel as a data table (one series per
// column, as the paper plots them).
func FormatFigure8(name string, rows []Fig8Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8 (%s). Avg. Rel. Error (%%) vs Synopsis Size\n", name)
	fmt.Fprintf(&sb, "%10s %10s %8s %8s %8s %8s %8s\n",
		"Bstr(B)", "Size(KB)", "Text", "String", "Numeric", "Struct", "Overall")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %10.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			r.StructBudget, r.TotalKB, r.Text*100, r.String*100, r.Numeric*100,
			r.Struct*100, r.Overall*100)
	}
	return sb.String()
}

// FormatFigure9 renders Figure 9 as the paper's small table.
func FormatFigure9(rows []Fig9Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9. Avg. Absolute Error for Low-Count Queries\n")
	fmt.Fprintf(&sb, "%-8s %-8s %12s %12s %6s\n", "Dataset", "Class", "AbsError", "AvgTrueSel", "N")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-8s %12.3f %12.2f %6d\n", r.Dataset, r.Class, r.AbsErr, r.AvgTrue, r.N)
	}
	return sb.String()
}

// FormatNegative renders the negative-workload summary.
func FormatNegative(rows []NegativeRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Negative workload (zero-selectivity queries): estimates at Bstr=0\n")
	fmt.Fprintf(&sb, "%-8s %-8s %12s %12s %6s\n", "Dataset", "Class", "AvgEstimate", "MaxEstimate", "N")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-8s %12.4f %12.4f %6d\n", r.Dataset, r.Class, r.AvgEst, r.MaxEst, r.N)
	}
	return sb.String()
}
