package harness

import (
	"strings"
	"testing"

	"xcluster/internal/workload"
)

// smallCfg keeps harness tests fast.
func smallCfg() Config {
	return Config{Scale: 0.2, Seed: 7, PerClass: 10, Points: 3}
}

func TestNewDataset(t *testing.T) {
	for _, name := range DatasetNames() {
		d, err := NewDataset(name, smallCfg())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Tree.Len() == 0 || d.Ref.NumNodes() == 0 {
			t.Fatalf("%s: empty dataset", name)
		}
		if len(d.Workload.Queries) == 0 || len(d.Negative.Queries) == 0 {
			t.Fatalf("%s: empty workloads", name)
		}
		if d.XMLBytes == 0 {
			t.Fatalf("%s: zero file size", name)
		}
		if err := d.Ref.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := NewDataset("nope", smallCfg()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTables(t *testing.T) {
	d, err := NewDataset("IMDB", smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t1 := Table1(d)
	if t1.Elements != d.Tree.Len() || t1.TotalNodes != d.Ref.NumNodes() {
		t.Fatalf("Table1 = %+v", t1)
	}
	if t1.ValueNodes == 0 || t1.RefKB <= 0 || t1.FileMB <= 0 {
		t.Fatalf("Table1 = %+v", t1)
	}
	t2 := Table2(d)
	if t2.AvgStruct <= 0 || t2.AvgPred <= 0 {
		t.Fatalf("Table2 = %+v", t2)
	}
	out := FormatTable1([]Table1Row{t1}) + FormatTable2([]Table2Row{t2})
	for _, want := range []string{"IMDB", "Elements", "Struct"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure8SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	cfg := smallCfg()
	d, err := NewDataset("IMDB", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure8(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.Points {
		t.Fatalf("rows = %d, want %d", len(rows), cfg.Points)
	}
	// Budgets increase, sizes stay sane, errors are finite and the final
	// (full-budget) overall error does not exceed the coarsest one by
	// much — the headline shape of the paper.
	for i, r := range rows {
		if i > 0 && r.StructBudget <= rows[i-1].StructBudget {
			t.Fatalf("budgets not increasing: %+v", rows)
		}
		for _, e := range []float64{r.Overall, r.Numeric, r.String, r.Text, r.Struct} {
			if e < 0 || e > 100 {
				t.Fatalf("implausible error %g in %+v", e, r)
			}
		}
	}
	first, last := rows[0].Overall, rows[len(rows)-1].Overall
	if last > first+0.05 {
		t.Fatalf("error grew with budget: %g -> %g", first, last)
	}
	out := FormatFigure8("IMDB", rows)
	if !strings.Contains(out, "Overall") {
		t.Fatal("missing header")
	}
}

func TestFigure9AndNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	cfg := smallCfg()
	d, err := NewDataset("XMark", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure9(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Figure9 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AbsErr < 0 {
			t.Fatalf("negative abs error: %+v", r)
		}
	}
	neg, err := NegativeExperiment(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range neg {
		if r.N == 0 {
			continue
		}
		// The paper: estimates close to zero for all budgets. Allow a
		// small epsilon per query.
		if r.AvgEst > 1.0 {
			t.Fatalf("negative workload avg estimate %g for %s/%v", r.AvgEst, r.Dataset, r.Class)
		}
	}
	_ = FormatFigure9(rows)
	_ = FormatNegative(neg)
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	cfg := smallCfg()
	d, err := NewDataset("IMDB", cfg)
	if err != nil {
		t.Fatal(err)
	}
	th := AblationTermHist(d, []int{2048, 128})
	if len(th) != 2 {
		t.Fatalf("termhist rows = %d", len(th))
	}
	for _, r := range th {
		// The end-biased histogram never leaks frequency onto absent
		// terms — the paper's core argument for the design.
		if r.EndBiasedZero != 0 {
			t.Fatalf("end-biased absent-term frequency %g at %dB", r.EndBiasedZero, r.Budget)
		}
		if r.EndBiasedErr < 0 || r.ConvErr < 0 {
			t.Fatalf("negative errors: %+v", r)
		}
	}
	ps := AblationPSTPruning(d, []float64{0.5}, 3)
	if len(ps) != 1 || ps[0].Nodes <= 0 {
		t.Fatalf("pst rows = %+v", ps)
	}
	num := AblationNumericSummaries(d, []int{256, 64}, 3)
	if len(num) != 2 {
		t.Fatalf("numeric rows = %d", len(num))
	}
	for _, r := range num {
		for _, e := range []float64{r.Histogram, r.MaxDiff, r.Wavelet, r.Sample} {
			if e < 0 {
				t.Fatalf("negative error in %+v", r)
			}
		}
	}
	if !strings.Contains(FormatNumericAblation(num), "maxdiff") {
		t.Fatal("numeric ablation format")
	}
	bd, err := AblationBuild(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd) != 4 {
		t.Fatalf("build rows = %d", len(bd))
	}
	// Random merging must not beat the Δ-guided construction.
	var full, random float64
	for _, r := range bd {
		switch r.Policy {
		case "localized Δ + levels":
			full = r.Overall
		case "random merges":
			random = r.Overall
		}
	}
	if full > random {
		t.Fatalf("Δ-guided build (%.3f) worse than random merging (%.3f)", full, random)
	}
	out := FormatAblations(th, ps, bd)
	if !strings.Contains(out, "end-biased") || !strings.Contains(out, "random merges") {
		t.Fatal("missing ablation sections")
	}
}

func TestAutoBudgetExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	cfg := smallCfg()
	d, err := NewDataset("IMDB", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AutoBudgetExperiment(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (3 fixed + auto + workload)", len(rows))
	}
	for _, r := range rows {
		if r.Overall < 0 || r.Bstr < 0 || r.Bval < 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if rows[3].Split != "auto (sample-guided)" || rows[3].Provenance != "auto" {
		t.Fatalf("auto row = %+v", rows[3])
	}
	wl := rows[4]
	if wl.Split != "workload (planner)" || wl.Provenance != "workload" {
		t.Fatalf("workload row = %+v", wl)
	}
	if wl.Plan == nil || !wl.Plan.HasValueSplit() || wl.Plan.WorkloadFingerprint == "" {
		t.Fatalf("workload row carries no component plan: %+v", wl.Plan)
	}
	if wl.Bstr+wl.Bval != rows[2].Bstr+rows[2].Bval {
		t.Fatalf("workload row total %d != fixed 50%% total %d",
			wl.Bstr+wl.Bval, rows[2].Bstr+rows[2].Bval)
	}
	out := FormatAutoBudget(rows)
	if !strings.Contains(out, "auto") || !strings.Contains(out, "workload") {
		t.Fatal("format missing auto or workload row")
	}
	if !strings.Contains(FormatAutoBudgetJSON(rows), `"provenance": "workload"`) {
		t.Fatal("JSON missing workload provenance")
	}
}

func TestBudgetHelpers(t *testing.T) {
	cfg := smallCfg()
	d, _ := NewDataset("IMDB", cfg)
	budgets := cfg.StructBudgets(d)
	if budgets[0] != 0 || budgets[len(budgets)-1] > d.Ref.StructBytes() || budgets[len(budgets)-1] <= 0 {
		t.Fatalf("budgets = %v", budgets)
	}
	if vb := cfg.ValueBudget(d); vb <= 0 || vb >= d.Ref.ValueBytes() {
		t.Fatalf("value budget = %d (ref %d)", vb, d.Ref.ValueBytes())
	}
	// Evaluate on the workload's own classes to ensure coverage.
	for _, c := range workload.Classes() {
		if len(d.Workload.ByClass(c)) == 0 {
			t.Fatalf("class %v empty", c)
		}
	}
}
