module xcluster

go 1.24
