package xcluster

// Option configures Build, BuildReference, BuildContext and AutoBuild.
// Options compose left to right: later options override earlier ones,
// and Legacy replaces the whole configuration, so it should come first
// when mixed with With* options.
type Option func(*Options)

// Legacy adapts the original Options struct to the functional-options
// API, so pre-existing call sites keep working:
//
//	syn, err := xcluster.Build(tree, xcluster.Legacy(opts))
func Legacy(opts Options) Option {
	return func(dst *Options) { *dst = opts }
}

// WithStructBudget sets the byte budget for the synopsis graph (nodes,
// edges, edge counts). The coarsest reachable structure is one cluster
// per (tag, value type).
func WithStructBudget(n int) Option {
	return func(o *Options) { o.StructBudget = n }
}

// WithValueBudget sets the byte budget for value summaries (histograms,
// pruned suffix trees, end-biased term histograms).
func WithValueBudget(n int) Option {
	return func(o *Options) { o.ValueBudget = n }
}

// WithBudgetPlan supplies the budgets as a first-class BudgetPlan
// instead of the two raw ints: the plan's Bstr/Bval drive the build, a
// non-zero value split steers per-kind value compression, and the
// plan's provenance and workload fingerprint are stamped into the
// synopsis fingerprint. Setting WithStructBudget/WithValueBudget
// alongside a disagreeing plan is a build error. A plan synthesized
// with PlanFromBudgets behaves bit-for-bit like the raw ints.
func WithBudgetPlan(p BudgetPlan) Option {
	return func(o *Options) { o.BudgetPlan = &p }
}

// WithValuePaths restricts value summarization to the given root label
// paths (e.g. "/dblp/author/paper/year"). Without it every value-bearing
// path is summarized.
func WithValuePaths(paths ...string) Option {
	return func(o *Options) { o.ValuePaths = paths }
}

// WithPSTDepth bounds the substring length retained by string summaries
// (default 4).
func WithPSTDepth(d int) Option {
	return func(o *Options) { o.PSTDepth = d }
}

// WithHistBuckets caps detailed numeric histograms (default: one bucket
// per distinct value).
func WithHistBuckets(n int) Option {
	return func(o *Options) { o.HistBuckets = n }
}

// WithMaxSummaryBytes caps each detailed reference value summary
// (default: unbounded).
func WithMaxSummaryBytes(n int) Option {
	return func(o *Options) { o.MaxSummaryBytes = n }
}

// NumericSummary selects the summarization tool for NUMERIC frequency
// distributions — the three tools the paper cites.
type NumericSummary int

const (
	// NumericHistogram is the default: bucketized frequency histograms.
	NumericHistogram NumericSummary = iota
	// NumericWavelet uses Haar-wavelet synopses.
	NumericWavelet
	// NumericSample uses seeded reservoir samples.
	NumericSample
)

// String returns the option-string form of the kind (the value the
// legacy Options.NumericSummary field takes).
func (k NumericSummary) String() string {
	switch k {
	case NumericHistogram:
		return "histogram"
	case NumericWavelet:
		return "wavelet"
	case NumericSample:
		return "sample"
	}
	return "unknown"
}

// WithNumericSummary selects the NUMERIC summarization tool.
func WithNumericSummary(k NumericSummary) Option {
	return func(o *Options) { o.NumericSummary = k.String() }
}

// WithBuildWorkers sets the number of goroutines evaluating merge
// candidates during XCLUSTERBUILD. 0 (the default) uses GOMAXPROCS;
// negative values are rejected by Build. The worker count never
// changes the produced synopsis: parallel builds are bit-for-bit
// identical to serial ones, and the count is not part of the synopsis
// fingerprint.
func WithBuildWorkers(n int) Option {
	return func(o *Options) { o.BuildWorkers = n }
}

// WithBuildProgress registers a callback receiving periodic
// BuildProgress snapshots (phase, current sizes against budgets, merge
// and evaluation counters) while a build runs. The callback is invoked
// synchronously from the build, so it should return quickly.
func WithBuildProgress(fn func(BuildProgress)) Option {
	return func(o *Options) { o.BuildProgress = fn }
}

// WithBuildMetrics attaches a MetricSink to the build; XCLUSTERBUILD
// emits its counters (merges applied, candidate evaluations by
// outcome, phase durations) through it.
func WithBuildMetrics(sink MetricSink) Option {
	return func(o *Options) { o.BuildMetrics = sink }
}

// WithBuildStats points the build at a BuildStats to fill in: after a
// successful Build the struct holds the work performed (pairs
// evaluated, memo hit rate, per-phase wall times).
func WithBuildStats(st *BuildStats) Option {
	return func(o *Options) { o.BuildStats = st }
}

// applyOptions folds a list of options over the zero configuration.
func applyOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
