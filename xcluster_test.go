package xcluster_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xcluster"
)

const libraryDoc = `
<library>
  <book><title>Compilers Principles</title><year>1986</year>
    <summary>lexical analysis parsing semantic translation code generation optimization</summary></book>
  <book><title>Computer Networks</title><year>1996</year>
    <summary>protocol layers routing congestion transport reliability sockets</summary></book>
  <book><title>Operating Systems</title><year>2001</year>
    <summary>processes threads scheduling memory virtualization filesystems concurrency</summary></book>
  <journal><title>Acta Informatica</title><year>1971</year></journal>
</library>`

func parseLibrary(t *testing.T) *xcluster.Tree {
	t.Helper()
	tree, err := xcluster.ParseXML(strings.NewReader(libraryDoc))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPublicBuildAndEstimate(t *testing.T) {
	tree := parseLibrary(t)
	syn, err := xcluster.Build(tree, xcluster.Options{StructBudget: 1024, ValueBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	est := xcluster.NewEstimator(syn)
	q, err := xcluster.ParseQuery("//book[year>1990]")
	if err != nil {
		t.Fatal(err)
	}
	got := est.Selectivity(q)
	want := xcluster.ExactSelectivity(tree, q)
	if want != 2 {
		t.Fatalf("exact = %g, want 2", want)
	}
	if math.Abs(got-want) > 1 {
		t.Fatalf("estimate %g too far from %g", got, want)
	}
	st := xcluster.SynopsisStats(syn)
	if st.Nodes == 0 || st.TotalKB <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "clusters") {
		t.Fatalf("stats string = %q", st.String())
	}
}

func TestPublicSerializationRoundTrip(t *testing.T) {
	tree := parseLibrary(t)
	syn, err := xcluster.Build(tree, xcluster.Options{StructBudget: 4096, ValueBudget: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xcluster.WriteSynopsis(&buf, syn); err != nil {
		t.Fatal(err)
	}
	back, err := xcluster.ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := xcluster.ParseQuery("//book[summary ftcontains(concurrency)]")
	a := xcluster.NewEstimator(syn).Selectivity(q)
	b := xcluster.NewEstimator(back).Selectivity(q)
	if math.Abs(a-b) > 1e-12*math.Max(1, a) {
		t.Fatalf("round trip changed estimate: %g vs %g", a, b)
	}
}

func TestPublicNumericSummaryOption(t *testing.T) {
	tree := parseLibrary(t)
	for _, kind := range []string{"", "histogram", "wavelet", "sample"} {
		if _, err := xcluster.Build(tree, xcluster.Options{
			StructBudget: 1024, ValueBudget: 1024, NumericSummary: kind,
		}); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
	}
	if _, err := xcluster.Build(tree, xcluster.Options{NumericSummary: "tarot"}); err == nil {
		t.Fatal("accepted unknown numeric summary kind")
	}
}

func TestPublicAutoBuild(t *testing.T) {
	tree := parseLibrary(t)
	var sample []*xcluster.Query
	for _, qs := range []string{"//book", "//book[year>1990]", "//book/title"} {
		q, err := xcluster.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		sample = append(sample, q)
	}
	total := 2048
	syn, bstr, err := xcluster.AutoBuild(tree, total, sample, xcluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bstr <= 0 || bstr >= total {
		t.Fatalf("chosen structural budget %d of %d", bstr, total)
	}
	// The chosen synopsis respects the total budget up to the tag-level
	// floor (merging cannot go below one cluster per label).
	if syn.TotalBytes() > 4*total {
		t.Fatalf("synopsis %d bytes blows the %d budget", syn.TotalBytes(), total)
	}
	// And without a sample the call fails cleanly.
	if _, _, err := xcluster.AutoBuild(tree, total, nil, xcluster.Options{}); err == nil {
		t.Fatal("AutoBuild accepted an empty sample")
	}
}

func TestPublicParseErrors(t *testing.T) {
	if _, err := xcluster.ParseXML(strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("accepted malformed XML")
	}
	if _, err := xcluster.ParseQuery("not a query"); err == nil {
		t.Fatal("accepted malformed query")
	}
}

func TestPublicWriteXML(t *testing.T) {
	tree := parseLibrary(t)
	var buf bytes.Buffer
	if err := xcluster.WriteXML(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := xcluster.ParseXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tree.Len() {
		t.Fatalf("round trip: %d vs %d elements", back.Len(), tree.Len())
	}
}
