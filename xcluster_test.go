package xcluster_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"xcluster"
)

const libraryDoc = `
<library>
  <book><title>Compilers Principles</title><year>1986</year>
    <summary>lexical analysis parsing semantic translation code generation optimization</summary></book>
  <book><title>Computer Networks</title><year>1996</year>
    <summary>protocol layers routing congestion transport reliability sockets</summary></book>
  <book><title>Operating Systems</title><year>2001</year>
    <summary>processes threads scheduling memory virtualization filesystems concurrency</summary></book>
  <journal><title>Acta Informatica</title><year>1971</year></journal>
</library>`

func parseLibrary(t *testing.T) *xcluster.Tree {
	t.Helper()
	tree, err := xcluster.ParseXML(strings.NewReader(libraryDoc))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPublicBuildAndEstimate(t *testing.T) {
	tree := parseLibrary(t)
	syn, err := xcluster.Build(tree, xcluster.WithStructBudget(1024), xcluster.WithValueBudget(1024))
	if err != nil {
		t.Fatal(err)
	}
	est := xcluster.NewEstimator(syn)
	q, err := xcluster.ParseQuery("//book[year>1990]")
	if err != nil {
		t.Fatal(err)
	}
	got := est.Selectivity(q)
	want := xcluster.ExactSelectivity(tree, q)
	if want != 2 {
		t.Fatalf("exact = %g, want 2", want)
	}
	if math.Abs(got-want) > 1 {
		t.Fatalf("estimate %g too far from %g", got, want)
	}
	st := xcluster.SynopsisStats(syn)
	if st.Nodes == 0 || st.TotalKB <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "clusters") {
		t.Fatalf("stats string = %q", st.String())
	}
}

func TestPublicSerializationRoundTrip(t *testing.T) {
	tree := parseLibrary(t)
	syn, err := xcluster.Build(tree, xcluster.WithStructBudget(4096), xcluster.WithValueBudget(4096))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xcluster.WriteSynopsis(&buf, syn); err != nil {
		t.Fatal(err)
	}
	back, err := xcluster.ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := xcluster.ParseQuery("//book[summary ftcontains(concurrency)]")
	a := xcluster.NewEstimator(syn).Selectivity(q)
	b := xcluster.NewEstimator(back).Selectivity(q)
	if math.Abs(a-b) > 1e-12*math.Max(1, a) {
		t.Fatalf("round trip changed estimate: %g vs %g", a, b)
	}
}

func TestPublicNumericSummaryOption(t *testing.T) {
	tree := parseLibrary(t)
	// Legacy struct form, through the adapter.
	for _, kind := range []string{"", "histogram", "wavelet", "sample"} {
		if _, err := xcluster.Build(tree, xcluster.Legacy(xcluster.Options{
			StructBudget: 1024, ValueBudget: 1024, NumericSummary: kind,
		})); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
	}
	// Typed functional form.
	for _, kind := range []xcluster.NumericSummary{
		xcluster.NumericHistogram, xcluster.NumericWavelet, xcluster.NumericSample,
	} {
		if _, err := xcluster.Build(tree,
			xcluster.WithStructBudget(1024),
			xcluster.WithValueBudget(1024),
			xcluster.WithNumericSummary(kind),
		); err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
	}
	_, err := xcluster.Build(tree, xcluster.Legacy(xcluster.Options{NumericSummary: "tarot"}))
	if err == nil {
		t.Fatal("accepted unknown numeric summary kind")
	}
	if !errors.Is(err, xcluster.ErrUnknownNumericSummary) {
		t.Fatalf("error %v is not ErrUnknownNumericSummary", err)
	}
}

func TestPublicBudgetErrors(t *testing.T) {
	tree := parseLibrary(t)
	_, err := xcluster.Build(tree, xcluster.WithValueBudget(1024))
	if !errors.Is(err, xcluster.ErrBudgetTooSmall) {
		t.Fatalf("missing structural budget: %v, want ErrBudgetTooSmall", err)
	}
	_, err = xcluster.Build(tree, xcluster.WithStructBudget(1024), xcluster.WithValueBudget(-1))
	if !errors.Is(err, xcluster.ErrBudgetTooSmall) {
		t.Fatalf("negative value budget: %v, want ErrBudgetTooSmall", err)
	}
	if _, _, err := xcluster.AutoBuild(tree, 0, []*xcluster.Query{xcluster.MustParseQuery("//book")}); !errors.Is(err, xcluster.ErrBudgetTooSmall) {
		t.Fatalf("zero total budget: %v, want ErrBudgetTooSmall", err)
	}
}

func TestPublicAutoBuild(t *testing.T) {
	tree := parseLibrary(t)
	var sample []*xcluster.Query
	for _, qs := range []string{"//book", "//book[year>1990]", "//book/title"} {
		q, err := xcluster.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		sample = append(sample, q)
	}
	total := 2048
	syn, bstr, err := xcluster.AutoBuild(tree, total, sample)
	if err != nil {
		t.Fatal(err)
	}
	if bstr <= 0 || bstr >= total {
		t.Fatalf("chosen structural budget %d of %d", bstr, total)
	}
	// The chosen synopsis respects the total budget up to the tag-level
	// floor (merging cannot go below one cluster per label).
	if syn.TotalBytes() > 4*total {
		t.Fatalf("synopsis %d bytes blows the %d budget", syn.TotalBytes(), total)
	}
	// And without a sample the call fails cleanly.
	if _, _, err := xcluster.AutoBuild(tree, total, nil); err == nil {
		t.Fatal("AutoBuild accepted an empty sample")
	}
}

func TestPublicParseErrors(t *testing.T) {
	if _, err := xcluster.ParseXML(strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("accepted malformed XML")
	}
	if _, err := xcluster.ParseQuery("not a query"); err == nil {
		t.Fatal("accepted malformed query")
	}
	// Parse failures carry the byte offset of the failure.
	_, err := xcluster.ParseQuery("//book[year>")
	var perr *xcluster.QueryParseError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not *QueryParseError", err)
	}
	if perr.Offset != len("//book[year>") {
		t.Fatalf("offset = %d, want %d", perr.Offset, len("//book[year>"))
	}
	if perr.Input != "//book[year>" {
		t.Fatalf("input = %q", perr.Input)
	}
}

func TestPublicBuildContextCancellation(t *testing.T) {
	tree := parseLibrary(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := xcluster.BuildContext(ctx, tree,
		xcluster.WithStructBudget(64), // forces a merge phase, which polls ctx
		xcluster.WithValueBudget(64),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: %v, want context.Canceled", err)
	}
	// An undisturbed context builds fine.
	if _, err := xcluster.BuildContext(context.Background(), tree,
		xcluster.WithStructBudget(1024), xcluster.WithValueBudget(1024)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWriteXML(t *testing.T) {
	tree := parseLibrary(t)
	var buf bytes.Buffer
	if err := xcluster.WriteXML(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := xcluster.ParseXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tree.Len() {
		t.Fatalf("round trip: %d vs %d elements", back.Len(), tree.Len())
	}
}
