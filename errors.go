package xcluster

import (
	"errors"

	"xcluster/internal/core"
	"xcluster/internal/query"
	"xcluster/internal/service"
)

// ErrBudgetTooSmall reports a Build/Compress call whose storage budgets
// cannot hold any synopsis (a non-positive structural budget or a
// negative value budget). Test with errors.Is.
var ErrBudgetTooSmall = errors.New("xcluster: budget too small")

// ErrUnknownNumericSummary reports an Options.NumericSummary string that
// names none of the supported tools (histogram, wavelet, sample). The
// typed WithNumericSummary option cannot produce it. Test with
// errors.Is.
var ErrUnknownNumericSummary = errors.New("xcluster: unknown numeric summary")

// ErrSynopsisVersion reports a ReadSynopsis input whose file format
// version this build cannot decode (a file written by a newer build, or
// not a synopsis at all). Test with errors.Is.
var ErrSynopsisVersion = core.ErrSynopsisVersion

// Multi-tenant catalog addressing errors, surfaced by the serving
// stack's catalog front-end: requests naming a tenant the catalog does
// not know, a collection the tenant does not have, or a shard that is
// draining for detach. The HTTP layer maps them to consistent JSON
// 404/404/503 bodies. Test with errors.Is.
var (
	ErrUnknownTenant     = service.ErrUnknownTenant
	ErrUnknownCollection = service.ErrUnknownCollection
	ErrShardDraining     = service.ErrShardDraining
)

// QueryParseError is the error type ParseQuery returns for malformed
// queries; its Offset field reports the byte position of the failure.
// Extract with errors.As:
//
//	var perr *xcluster.QueryParseError
//	if errors.As(err, &perr) { fmt.Println(perr.Offset) }
type QueryParseError = query.ParseError
