package xcluster_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xcluster"
)

// concurrencyDoc generates a document large and varied enough that a
// tight structural budget forces real cluster merges (including the
// recursive part element, which exercises the cycle-handling path of the
// descendant-closure precomputation).
func concurrencyDoc() string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&b, "<item><name>Item %d</name><price>%d</price>", i, 5+(13*i)%500)
		if i%2 == 0 {
			fmt.Fprintf(&b, "<desc>durable %s finish tool number %d</desc>",
				[]string{"brass", "steel", "oak", "glass"}[i%4], i)
		}
		if i%5 == 0 {
			// Nested parts give the synopsis a recursive label.
			fmt.Fprintf(&b, "<part><name>Sub %d</name><part><name>SubSub %d</name></part></part>", i, i)
		}
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return b.String()
}

var concurrencyWorkload = []string{
	"//item",
	"//item/name",
	"//item[price>100]",
	"//item[price>100]/name",
	"//item[price range(50,250)]",
	"//item[desc contains(brass)]",
	"//item[desc ftcontains(durable,tool)]",
	"//part//name",
	"//item[part]/price",
	"//catalog/item[price<20][desc]",
}

// TestEstimatorConcurrentBitForBit hammers one shared Estimator from 32
// goroutines with a mixed twig workload and requires every answer to
// match the sequential answers bit-for-bit: the estimator's precomputed
// indexes, pooled memos, and result cache must not perturb the
// floating-point accumulation order. Run with -race.
func TestEstimatorConcurrentBitForBit(t *testing.T) {
	tree, err := xcluster.ParseXML(strings.NewReader(concurrencyDoc()))
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xcluster.Build(tree, xcluster.WithStructBudget(600), xcluster.WithValueBudget(768))
	if err != nil {
		t.Fatal(err)
	}

	qs := make([]*xcluster.Query, len(concurrencyWorkload))
	for i, s := range concurrencyWorkload {
		qs[i] = xcluster.MustParseQuery(s)
	}

	// Sequential ground truth from a separate, cache-less estimator.
	seq := xcluster.NewEstimator(syn)
	seq.SetCacheCapacity(0)
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = seq.Selectivity(q)
	}

	shared := xcluster.NewEstimator(syn)
	const goroutines = 32
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Rotate so goroutines overlap on different queries.
				i := (g + r) % len(qs)
				if got := shared.Selectivity(qs[i]); got != want[i] {
					errs <- fmt.Errorf("goroutine %d: %s = %v, want %v (bit-for-bit)",
						g, concurrencyWorkload[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs := shared.CacheStats()
	if cs.Hits+cs.Misses != goroutines*rounds {
		t.Fatalf("cache saw %d lookups, want %d", cs.Hits+cs.Misses, goroutines*rounds)
	}
	if cs.Hits == 0 {
		t.Fatalf("no cache hits across %d repeated queries: %+v", goroutines*rounds, cs)
	}
}
