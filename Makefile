GO ?= go

.PHONY: check build test bench bench-json bench-build bench-catalog bench-obs bench-workload bench-autobudget

# The check gate: gofmt, vet, build, a fast -short pass under the race
# detector, then the full suite (slow experiment sweeps included).
check:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -short -race ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Estimation micro-benchmarks (cold vs prepared vs cache-hit vs parallel).
bench:
	$(GO) test -run xxx -bench 'Estimate(|Cold|CacheHit|Parallel)$$|Prepared$$' -benchmem .

# Machine-readable benchmark: the prepared-execution experiment (with
# the embedded per-class accuracy report) as JSON at the repo root.
bench-json:
	$(GO) run ./cmd/xclusterbench -experiment prepared > BENCH_prepared.json
	@echo "wrote BENCH_prepared.json"

# Machine-readable build benchmark: serial vs parallel vs memoized
# synopsis construction (with the bit-for-bit identity check) as JSON
# at the repo root.
bench-build:
	$(GO) run ./cmd/xclusterbench -experiment build > BENCH_build.json
	@echo "wrote BENCH_build.json"

# Machine-readable catalog benchmark: scatter-gather estimation across a
# sharded corpus vs the single-shard direct path (with the bit-for-bit
# aggregate check and routing spread) as JSON at the repo root.
bench-catalog:
	$(GO) run ./cmd/xclusterbench -experiment catalog > BENCH_catalog.json
	@echo "wrote BENCH_catalog.json"

# Machine-readable observability benchmark: tracing-off vs tracing-on
# ns/op and allocs/op on the prepared serving hot path (the sampled-out
# overhead must stay under 10%) as JSON at the repo root.
bench-obs:
	$(GO) run ./cmd/xclusterbench -experiment obs > BENCH_obs.json
	@echo "wrote BENCH_obs.json"

# Machine-readable workload-profiler benchmark: profiling-off vs
# profiling-on ns/op on the prepared serving hot path (the overhead
# must stay under 10%) plus the WorkloadProfile export round-trip
# check, as JSON at the repo root.
bench-workload:
	$(GO) run ./cmd/xclusterbench -experiment workload > BENCH_workload.json
	@echo "wrote BENCH_workload.json"

# Machine-readable budget-allocation benchmark: fixed structural/value
# splits vs the sample-guided auto search vs the workload-adaptive
# planner, all scored on held-out queries, as JSON at the repo root.
bench-autobudget:
	$(GO) run ./cmd/xclusterbench -experiment autobudget > BENCH_autobudget.json
	@echo "wrote BENCH_autobudget.json"
