GO ?= go

.PHONY: check build test bench

# The check gate: vet, build, full suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Estimation micro-benchmarks (cold vs cache-hit vs parallel).
bench:
	$(GO) test -run xxx -bench 'Estimate(|Cold|CacheHit|Parallel)$$' -benchmem .
