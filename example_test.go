package xcluster_test

import (
	"fmt"
	"strings"

	"xcluster"
)

// ExampleBuild shows the end-to-end flow: parse a document, build a
// budgeted synopsis, and estimate a twig query with heterogeneous
// predicates against the exact answer.
func ExampleBuild() {
	doc := `<dblp>
	  <paper><year>1999</year><title>Join Processing</title>
	    <abstract>classical relational join processing in database engines</abstract></paper>
	  <paper><year>2004</year><title>Tree Synopses</title>
	    <abstract>a synopsis model for xml data trees enabling selectivity estimation</abstract>
	    <keywords>xml synopsis</keywords></paper>
	  <paper><year>2005</year><title>Tree Patterns</title>
	    <abstract>twig pattern matching over xml synopsis structures</abstract>
	    <keywords>xml twig</keywords></paper>
	</dblp>`
	tree, _ := xcluster.ParseXML(strings.NewReader(doc))
	syn, _ := xcluster.Build(tree, xcluster.WithStructBudget(1024), xcluster.WithValueBudget(1024))

	q, _ := xcluster.ParseQuery("//paper[year>2000][abstract ftcontains(xml,synopsis)]/title[contains(Tree)]")
	est := xcluster.NewEstimator(syn)
	fmt.Printf("estimate: %.0f\n", est.Selectivity(q))
	fmt.Printf("exact:    %.0f\n", xcluster.ExactSelectivity(tree, q))
	// Output:
	// estimate: 2
	// exact:    2
}

// ExampleParseQuery shows the supported twig-query fragment.
func ExampleParseQuery() {
	for _, s := range []string{
		"//paper/title",
		"//paper[year>2000]",
		"//item[name contains(Brass)][quantity>=5]",
		"//text[ftsim(2,vintage,rare,signed)]",
	} {
		q, err := xcluster.ParseQuery(s)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%d variable(s): %s\n", q.Vars(), s)
	}
	// Output:
	// 1 variable(s): //paper/title
	// 2 variable(s): //paper[year>2000]
	// 3 variable(s): //item[name contains(Brass)][quantity>=5]
	// 1 variable(s): //text[ftsim(2,vintage,rare,signed)]
}

// ExampleExactSelectivity shows binding-tuple semantics: every query
// variable binds, so sibling branches multiply.
func ExampleExactSelectivity() {
	doc := `<root><author>
	  <paper/><paper/>
	  <interest/><interest/><interest/>
	</author></root>`
	tree, _ := xcluster.ParseXML(strings.NewReader(doc))
	q, _ := xcluster.ParseQuery("//author[paper][interest]")
	// (author, paper, interest) assignments: 1 * 2 * 3.
	fmt.Printf("%.0f\n", xcluster.ExactSelectivity(tree, q))
	// Output:
	// 6
}
